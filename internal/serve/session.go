package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Session-manager errors, mapped to HTTP statuses by the handlers.
var (
	// ErrNotFound reports an unknown (or already evicted/expired) session.
	ErrNotFound = errors.New("serve: session not found")
	// ErrBusy reports a full shard batch queue; the client should back off
	// and retry (HTTP 429).
	ErrBusy = errors.New("serve: batch queue full")
	// ErrFull reports that the session table is at capacity and every
	// resident session is live (recently used), so none can be evicted.
	ErrFull = errors.New("serve: session capacity reached")
	// ErrClosing reports a manager that is draining for shutdown.
	ErrClosing = errors.New("serve: server shutting down")
	// ErrExists reports a create or restore under a session ID that is
	// already resident (or spilled to disk) — HTTP 409.
	ErrExists = errors.New("serve: session already exists")
	// ErrSeqGap reports a batch whose sequence number skips ahead of the
	// session's last applied batch: an earlier batch was lost, so applying
	// this one would silently corrupt the stream — HTTP 409.
	ErrSeqGap = errors.New("serve: batch sequence gap")
	// ErrBadID reports a client-supplied session ID outside the allowed
	// charset ([A-Za-z0-9_-], at most 64 bytes).
	ErrBadID = errors.New("serve: invalid session id")
)

// SessionInfo is the externally visible state of one session.
type SessionInfo struct {
	ID       string
	Spec     string
	Events   uint64
	Batches  uint64
	LastSeq  uint64
	Created  time.Time
	LastUsed time.Time
	Metrics  core.Metrics
}

// FeedResult acknowledges one accepted batch.
type FeedResult struct {
	Events      int    // events in this batch
	TotalEvents uint64 // session lifetime total
	Duplicate   bool   // batch seq already applied; acknowledged, not re-applied
	Info        *SessionInfo
}

// session is the manager-internal state; owned exclusively by its shard's
// goroutine, so no field needs locking.
type session struct {
	id      string
	spec    sim.Spec
	eval    *core.Evaluator
	events  uint64
	batches uint64
	lastSeq uint64 // highest applied batch sequence number (0 = none)
	bytes   int64
	created time.Time
	last    time.Time
	elem    *list.Element
}

func (s *session) info(withMetrics bool) *SessionInfo {
	inf := &SessionInfo{
		ID: s.id, Spec: s.spec.String(),
		Events: s.events, Batches: s.batches, LastSeq: s.lastSeq,
		Created: s.created, LastUsed: s.last,
	}
	if withMetrics {
		inf.Metrics = s.eval.MetricsSnapshot()
	} else {
		// Cheap summary: the counter fields without cloning ByPC.
		inf.Metrics = s.eval.Metrics()
		inf.Metrics.ByPC = nil
	}
	return inf
}

// shardOp is one unit of queued shard work. Exactly one field is set:
// fn for control-plane ops (create, delete, metrics, snapshot, ...),
// feed for event batches. Feeds carry their request as data rather than
// a closure so the scheduling pass can see across them and group
// same-session batches; fn ops are opaque and act as barriers.
type shardOp struct {
	fn   func()
	feed *feedReq
}

// feedReq is one queued event batch, the data previously captured by the
// Feed op closure.
type feedReq struct {
	id          string
	events      []trace.Event
	insts       uint64
	seq         uint64
	withMetrics bool
	reply       chan sessionReply
}

// shard owns a partition of the session table. All mutation happens on
// the shard's run goroutine, which drains the queue in scheduling
// passes: single-writer ownership means the event-feed hot path takes no
// locks, and batches queued for the same hot session during one wakeup
// are fed back to back through one devirtualized FeedBatches call while
// the predictor's tables are cache-resident.
type shard struct {
	mgr *sessionManager

	ops  chan shardOp
	quit chan struct{}

	// Owned by the run goroutine.
	sessions map[string]*session
	lru      *list.List // front = most recently used
	bytes    int64
	passBuf  []shardOp // reused per-pass drain buffer

	maxSessions int
	maxBytes    int64
}

func (sh *shard) run(ttl, sweepEvery time.Duration) {
	defer sh.mgr.wg.Done()
	ticker := time.NewTicker(sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case op := <-sh.ops:
			sh.pass(op)
		case <-ticker.C:
			if ttl > 0 {
				sh.expire(sh.mgr.now())
			}
			sh.makeRoom(sh.mgr.now(), 0)
		case <-sh.quit:
			// Drain: every op already enqueued executes before exit, so
			// in-flight batches are never dropped by shutdown.
			for {
				select {
				case op := <-sh.ops:
					sh.pass(op)
				default:
					return
				}
			}
		}
	}
}

// pass executes one scheduling pass: the op that woke the shard plus
// everything else already queued. Ops run in arrival order, with one
// exception that preserves observable semantics: a contiguous run of
// feed ops is grouped by session, so n batches queued for one session
// execute as a single lookup + seq walk + FeedBatches flush instead of n
// independent dispatches. fn ops are barriers — grouping never reorders
// a feed across a create/delete/snapshot — and per-session feed order is
// arrival order, so sequence semantics are unchanged.
func (sh *shard) pass(first shardOp) {
	ops := append(sh.passBuf[:0], first)
drain:
	for {
		select {
		case op := <-sh.ops:
			ops = append(ops, op)
		default:
			break drain
		}
	}
	sh.mgr.tel.schedPasses.Inc()
	for i := 0; i < len(ops); {
		if ops[i].fn != nil {
			ops[i].fn()
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && ops[j].feed != nil {
			j++
		}
		sh.feedRun(ops[i:j])
		i = j
	}
	// The buffer holds reply channels and event slices; clear before
	// reuse so a quiet shard doesn't pin a past pass's batches live.
	clear(ops)
	sh.passBuf = ops[:0]
}

// feedRun executes one contiguous run of feed ops, grouping them by
// session. First-appearance order decides session order; within a
// session, arrival order is preserved.
func (sh *shard) feedRun(run []shardOp) {
	var one [1]*feedReq
	if len(run) == 1 {
		// The common serial-client case: one queued batch, no grouping
		// bookkeeping.
		one[0] = run[0].feed
		sh.feedSession(run[0].feed.id, one[:])
		sh.makeRoom(sh.mgr.now(), 0)
		return
	}
	var group []*feedReq
	for i := range run {
		if run[i].feed == nil {
			continue // already claimed by an earlier session group
		}
		id := run[i].feed.id
		group = append(group[:0], run[i].feed)
		for j := i + 1; j < len(run); j++ {
			if run[j].feed != nil && run[j].feed.id == id {
				group = append(group, run[j].feed)
				run[j].feed = nil
			}
		}
		if len(group) > 1 {
			sh.mgr.tel.schedGrouped.Add(uint64(len(group)))
		}
		sh.feedSession(id, group)
	}
	sh.makeRoom(sh.mgr.now(), 0)
}

// feedSession applies a session's grouped feed requests in order. The
// seq walk (duplicate acks, gap rejects, bookkeeping) runs eagerly per
// request; accepted batches accumulate and flush through one
// FeedBatches call — immediately when a request wants metrics in its
// reply, at the end of the group otherwise. Replies for applied batches
// are sent only after their events are flushed, so an acked batch is
// always applied state, exactly as when each batch was its own op.
func (sh *shard) feedSession(id string, group []*feedReq) {
	// The clock is read per session group, not per pass: a session touched
	// by an earlier group in this pass must look idle to a later group's
	// warm restore, or makeRoom under a full table would refuse to evict it
	// and the restore — and the feed behind it — would fail spuriously.
	now := sh.mgr.now()
	s, ok := sh.lookup(id, now)
	if !ok {
		for _, r := range group {
			r.reply <- sessionReply{err: ErrNotFound}
		}
		return
	}
	var batches [][]trace.Event
	var applied []*feedReq // replies owed after the final flush, in order
	var totals []uint64    // session event totals as of each applied batch
	flush := func() {
		if len(batches) > 0 {
			s.eval.FeedBatches(batches)
			batches = batches[:0]
		}
	}
	for _, r := range group {
		// Sequence-numbered batches are exactly-once: a seq at or below
		// the last applied one is a retry of work already done (common
		// after a failover, when the client re-sends an acked batch) and
		// is acknowledged without re-feeding; a seq that skips ahead means
		// a batch was lost and the stream cannot be applied faithfully.
		if r.seq > 0 && s.lastSeq > 0 {
			if r.seq <= s.lastSeq {
				res := FeedResult{Events: len(r.events), TotalEvents: s.events, Duplicate: true}
				if r.withMetrics {
					flush()
					res.Info = s.info(true)
				}
				r.reply <- sessionReply{feed: res}
				continue
			}
			if r.seq != s.lastSeq+1 {
				r.reply <- sessionReply{err: fmt.Errorf("%w: batch seq %d after %d", ErrSeqGap, r.seq, s.lastSeq)}
				continue
			}
		}
		if r.seq > 0 {
			s.lastSeq = r.seq
		}
		// The hot path: one goroutine, no locks, batches accumulated for
		// one devirtualized flush through the evaluator's fused fast path.
		batches = append(batches, r.events)
		s.eval.AddInsts(r.insts)
		s.events += uint64(len(r.events))
		s.batches++
		sh.mgr.tel.events.Add(uint64(len(r.events)))
		sh.mgr.tel.batches.Inc()
		if r.withMetrics {
			flush()
			r.reply <- sessionReply{feed: FeedResult{
				Events: len(r.events), TotalEvents: s.events, Info: s.info(true),
			}}
			continue
		}
		applied = append(applied, r)
		totals = append(totals, s.events)
	}
	flush()
	sh.touch(s, now)
	sh.setBytes(s, specBytes(s.spec)+int64(len(s.eval.Metrics().ByPC))*96)
	for i, r := range applied {
		r.reply <- sessionReply{feed: FeedResult{Events: len(r.events), TotalEvents: totals[i]}}
	}
}

func (sh *shard) insert(s *session) {
	sh.sessions[s.id] = s
	s.elem = sh.lru.PushFront(s)
	sh.bytes += s.bytes
	sh.mgr.live.Add(1)
	sh.mgr.bytes.Add(s.bytes)
}

func (sh *shard) touch(s *session, now time.Time) {
	s.last = now
	sh.lru.MoveToFront(s.elem)
}

func (sh *shard) setBytes(s *session, b int64) {
	sh.bytes += b - s.bytes
	sh.mgr.bytes.Add(b - s.bytes)
	s.bytes = b
}

func (sh *shard) remove(s *session, c *telemetry.Counter) {
	delete(sh.sessions, s.id)
	sh.lru.Remove(s.elem)
	sh.bytes -= s.bytes
	sh.mgr.live.Add(-1)
	sh.mgr.bytes.Add(-s.bytes)
	c.Inc()
}

// spill writes the session's snapshot to the spill store, if one is
// configured. Returns true if the session's state is durable on disk.
func (sh *shard) spill(s *session) bool {
	st := sh.mgr.spill
	if st == nil {
		return false
	}
	blob, err := snap.Encode(s.spec, s.eval, snap.Meta{
		SessionID: s.id, Events: s.events, Batches: s.batches, LastSeq: s.lastSeq,
	})
	if err == nil {
		err = st.write(s.id, snap.Key(s.spec, s.eval.Config()), blob)
	}
	if err != nil {
		sh.mgr.tel.spillErrors.Inc()
		return false
	}
	sh.mgr.tel.sessSpilled.Inc()
	return true
}

// evict removes a session for capacity or idleness, spilling its state
// to disk first when a spill store is configured: eviction then demotes
// the session from memory to disk instead of destroying it.
func (sh *shard) evict(s *session, c *telemetry.Counter) {
	sh.spill(s)
	sh.remove(s, c)
}

// restore warm-restores a spilled session back into the shard. Returns
// nil if no spill file exists or it fails to decode (a corrupt file is
// removed so it cannot wedge the ID forever).
func (sh *shard) restore(id string, now time.Time) *session {
	st := sh.mgr.spill
	if st == nil {
		return nil
	}
	res, path, err := st.load(id)
	if err != nil {
		if path != "" {
			sh.mgr.tel.restoreFailures.Inc()
			st.removePath(path)
		}
		return nil
	}
	if !sh.makeRoom(now, 1) {
		return nil // table full of live sessions; the spill file stays
	}
	s := &session{
		id: id, spec: res.Spec, eval: res.Eval,
		events: res.Meta.Events, batches: res.Meta.Batches, lastSeq: res.Meta.LastSeq,
		bytes:   specBytes(res.Spec),
		created: now, last: now,
	}
	sh.insert(s)
	sh.mgr.tel.warmRestores.Inc()
	st.removePath(path) // the resident copy is authoritative again
	return s
}

// lookup finds a resident session, falling back to a warm restore from
// the spill store on a miss.
func (sh *shard) lookup(id string, now time.Time) (*session, bool) {
	if s, ok := sh.sessions[id]; ok {
		return s, true
	}
	if s := sh.restore(id, now); s != nil {
		return s, true
	}
	return nil, false
}

// expire drops sessions idle longer than the TTL.
func (sh *shard) expire(now time.Time) {
	ttl := sh.mgr.cfg.SessionTTL
	for e := sh.lru.Back(); e != nil; {
		s := e.Value.(*session)
		prev := e.Prev()
		if now.Sub(s.last) <= ttl {
			break // LRU order: everything further forward is younger
		}
		sh.evict(s, sh.mgr.tel.sessExpired)
		e = prev
	}
}

// makeRoom evicts least-recently-used sessions until the shard fits one
// more session plus the count/byte bounds. Only sessions idle at least
// MinEvictIdle are candidates: a live session — one a client is actively
// feeding or polling — is never evicted, so its metrics cannot be lost to
// capacity pressure. Returns false if the bounds cannot be met.
func (sh *shard) makeRoom(now time.Time, extra int) bool {
	over := func() bool {
		return len(sh.sessions)+extra > sh.maxSessions || sh.bytes > sh.maxBytes
	}
	for over() {
		// The LRU tail is the least recently used session; if even it is
		// younger than MinEvictIdle, no session is evictable.
		e := sh.lru.Back()
		if e == nil {
			return !over()
		}
		s := e.Value.(*session)
		if now.Sub(s.last) < sh.mgr.cfg.MinEvictIdle {
			return !over()
		}
		sh.evict(s, sh.mgr.tel.sessEvicted)
	}
	return true
}

// sessionManager shards sessions across a fixed set of single-writer
// workers. Session IDs hash to a shard; every operation on a session runs
// on that shard's goroutine.
type sessionManager struct {
	cfg   Config
	tel   *serverMetrics
	now   func() time.Time
	spill *spillStore // nil when SpillDir is unset

	shards []*shard
	idctr  atomic.Uint64
	idsalt uint64

	live   atomic.Int64
	bytes  atomic.Int64
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
}

func newSessionManager(cfg Config, tel *serverMetrics, spill *spillStore) *sessionManager {
	m := &sessionManager{
		cfg: cfg, tel: tel, now: cfg.Now, spill: spill,
		idsalt: rand.Uint64(),
		done:   make(chan struct{}),
	}
	perShardSessions := (cfg.MaxSessions + cfg.Shards - 1) / cfg.Shards
	if perShardSessions < 1 {
		perShardSessions = 1
	}
	perShardBytes := cfg.MaxSessionBytes / int64(cfg.Shards)
	if perShardBytes < 1 {
		perShardBytes = 1
	}
	sweepEvery := time.Second
	if ttl := cfg.SessionTTL; ttl > 0 && ttl/4 < sweepEvery {
		sweepEvery = ttl / 4
		if sweepEvery < time.Millisecond {
			sweepEvery = time.Millisecond
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			mgr:         m,
			ops:         make(chan shardOp, cfg.QueueDepth),
			quit:        make(chan struct{}),
			sessions:    make(map[string]*session),
			lru:         list.New(),
			maxSessions: perShardSessions,
			maxBytes:    perShardBytes,
		}
		m.shards = append(m.shards, sh)
		m.wg.Add(1)
		go sh.run(cfg.SessionTTL, sweepEvery)
	}
	return m
}

func (m *sessionManager) newID() string {
	return fmt.Sprintf("s%06x-%08x", m.idctr.Add(1), uint32(m.idsalt>>32)^uint32(m.idsalt)^rand.Uint32())
}

func (m *sessionManager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// enqueue submits an op to a shard. Blocking ops wait for queue space
// (bounded by ctx); batch ops instead fail fast with ErrBusy when the
// queue is full — the HTTP layer turns that into 429 backpressure.
func (m *sessionManager) enqueue(ctx context.Context, sh *shard, op shardOp, block bool) error {
	if m.closed.Load() {
		return ErrClosing
	}
	if !block {
		select {
		case sh.ops <- op:
			return nil
		default:
			return ErrBusy
		}
	}
	select {
	case sh.ops <- op:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-m.done:
		return ErrClosing
	}
}

type sessionReply struct {
	info *SessionInfo
	feed FeedResult
	err  error
}

func (m *sessionManager) wait(ctx context.Context, reply <-chan sessionReply) (sessionReply, error) {
	select {
	case r := <-reply:
		return r, r.err
	case <-ctx.Done():
		return sessionReply{}, ctx.Err()
	case <-m.done:
		// All workers have exited, so no op is mid-run: either ours ran
		// before the drain finished (reply is ready) or it never will.
		select {
		case r := <-reply:
			return r, r.err
		default:
			return sessionReply{}, ErrClosing
		}
	}
}

// Create builds a session for the spec/config and returns its info. The
// predictor inside cfg must be freshly built (ownership transfers to the
// shard goroutine). An empty id asks the server to generate one; a
// client-supplied id (the bprouter relies on this to route by consistent
// hash) must be unused, both resident and on disk.
func (m *sessionManager) Create(ctx context.Context, id string, spec sim.Spec, cfg core.EvalConfig) (*SessionInfo, error) {
	explicit := id != ""
	if explicit && !validSessionID(id) {
		return nil, ErrBadID
	}
	if !explicit {
		id = m.newID()
	}
	sh := m.shardFor(id)
	reply := make(chan sessionReply, 1)
	op := func() {
		if explicit {
			if _, ok := sh.sessions[id]; ok || (m.spill != nil && m.spill.has(id)) {
				reply <- sessionReply{err: ErrExists}
				return
			}
		}
		now := m.now()
		if !sh.makeRoom(now, 1) {
			reply <- sessionReply{err: ErrFull}
			return
		}
		s := &session{
			id: id, spec: spec,
			eval:    core.NewEvaluator(cfg),
			bytes:   specBytes(spec),
			created: now, last: now,
		}
		sh.insert(s)
		m.tel.sessCreated.Inc()
		reply <- sessionReply{info: s.info(false)}
	}
	if err := m.enqueue(ctx, sh, shardOp{fn: op}, true); err != nil {
		return nil, err
	}
	r, err := m.wait(ctx, reply)
	return r.info, err
}

// Feed streams one batch of events into a session. It applies
// backpressure (ErrBusy) instead of blocking when the shard queue is
// full. The events slice must not be reused by the caller until Feed
// returns the op's own outcome (nil or a manager error, meaning the op
// ran or never will); after a context error the op may still be queued
// and the slice must be considered retained.
func (m *sessionManager) Feed(ctx context.Context, id string, events []trace.Event, insts uint64, seq uint64, withMetrics bool) (FeedResult, error) {
	sh := m.shardFor(id)
	reply := make(chan sessionReply, 1)
	req := &feedReq{
		id: id, events: events, insts: insts, seq: seq,
		withMetrics: withMetrics, reply: reply,
	}
	if err := m.enqueue(ctx, sh, shardOp{feed: req}, false); err != nil {
		return FeedResult{}, err
	}
	r, err := m.wait(ctx, reply)
	return r.feed, err
}

// Metrics returns a snapshot of the session's metrics; it counts as a use
// for LRU/TTL purposes, so polled sessions stay live.
func (m *sessionManager) Metrics(ctx context.Context, id string) (*SessionInfo, error) {
	return m.sessionOp(ctx, id, func(sh *shard, s *session) *SessionInfo {
		sh.touch(s, m.now())
		return s.info(true)
	})
}

// Delete closes a session and returns its final metrics. Any spill file
// is removed too: a deleted session is gone, not demoted.
func (m *sessionManager) Delete(ctx context.Context, id string) (*SessionInfo, error) {
	return m.sessionOp(ctx, id, func(sh *shard, s *session) *SessionInfo {
		inf := s.info(true)
		sh.remove(s, m.tel.sessClosed)
		if m.spill != nil {
			m.spill.remove(id)
		}
		return inf
	})
}

// Snapshot serializes a session (resident or spilled) without removing
// it. The returned bytes are a self-contained snap.Encode blob; the
// bprouter migrates sessions between backends with it.
func (m *sessionManager) Snapshot(ctx context.Context, id string) ([]byte, error) {
	var blob []byte
	_, err := m.sessionOp(ctx, id, func(sh *shard, s *session) *SessionInfo {
		sh.touch(s, m.now())
		var encErr error
		blob, encErr = snap.Encode(s.spec, s.eval, snap.Meta{
			SessionID: s.id, Events: s.events, Batches: s.batches, LastSeq: s.lastSeq,
		})
		if encErr != nil {
			return nil // surfaces below as an internal error
		}
		return s.info(false)
	})
	if err != nil {
		return nil, err
	}
	if blob == nil {
		return nil, errors.New("serve: snapshot encoding failed")
	}
	return blob, nil
}

// Restore installs an already decoded snapshot as a session. The target
// ID (from the URL) must match the snapshot's own session ID, and the ID
// must be free — restore creates, it does not overwrite.
func (m *sessionManager) Restore(ctx context.Context, id string, res *snap.Restored) (*SessionInfo, error) {
	if !validSessionID(id) {
		return nil, ErrBadID
	}
	if res.Meta.SessionID != id {
		return nil, fmt.Errorf("%w: snapshot is of session %q", ErrBadID, res.Meta.SessionID)
	}
	sh := m.shardFor(id)
	reply := make(chan sessionReply, 1)
	op := func() {
		if _, ok := sh.sessions[id]; ok || (m.spill != nil && m.spill.has(id)) {
			reply <- sessionReply{err: ErrExists}
			return
		}
		now := m.now()
		if !sh.makeRoom(now, 1) {
			reply <- sessionReply{err: ErrFull}
			return
		}
		s := &session{
			id: id, spec: res.Spec, eval: res.Eval,
			events: res.Meta.Events, batches: res.Meta.Batches, lastSeq: res.Meta.LastSeq,
			bytes:   specBytes(res.Spec),
			created: now, last: now,
		}
		sh.insert(s)
		m.tel.sessCreated.Inc()
		reply <- sessionReply{info: s.info(false)}
	}
	if err := m.enqueue(ctx, sh, shardOp{fn: op}, true); err != nil {
		return nil, err
	}
	r, err := m.wait(ctx, reply)
	return r.info, err
}

func (m *sessionManager) sessionOp(ctx context.Context, id string, fn func(*shard, *session) *SessionInfo) (*SessionInfo, error) {
	sh := m.shardFor(id)
	reply := make(chan sessionReply, 1)
	op := func() {
		s, ok := sh.lookup(id, m.now())
		if !ok {
			reply <- sessionReply{err: ErrNotFound}
			return
		}
		reply <- sessionReply{info: fn(sh, s)}
	}
	if err := m.enqueue(ctx, sh, shardOp{fn: op}, true); err != nil {
		return nil, err
	}
	r, err := m.wait(ctx, reply)
	return r.info, err
}

// Stats builds a session's per-branch introspection report: totals plus
// the top-k branches by misprediction count. perBranch reports whether
// the session collects per-branch statistics at all (a session created
// without per_branch returns an empty report, not an error). Reading
// stats counts as a use for LRU/TTL purposes.
func (m *sessionManager) Stats(ctx context.Context, id string, k int) (*SessionInfo, core.BranchReport, bool, error) {
	var rep core.BranchReport
	var perBranch bool
	inf, err := m.sessionOp(ctx, id, func(sh *shard, s *session) *SessionInfo {
		sh.touch(s, m.now())
		mt := s.eval.Metrics()
		rep = mt.BranchReport(k)
		perBranch = s.eval.Config().PerBranch
		return s.info(false)
	})
	return inf, rep, perBranch, err
}

// h2pTimeout bounds the shard sweep behind the aggregate H2P metric
// families, so a wedged shard cannot hang a /metrics scrape.
const h2pTimeout = 2 * time.Second

// H2PTop merges per-branch statistics across every resident session and
// returns the k hardest branches fleet-wide (most mispredicted first,
// ties toward the lower PC). Shards that cannot answer within the
// internal timeout are skipped — a scrape-time ranking may be partial,
// never blocking.
func (m *sessionManager) H2PTop(k int) []core.BranchStats {
	agg := make(map[uint64]*core.BranchStats)
	ctx, cancel := context.WithTimeout(context.Background(), h2pTimeout)
	defer cancel()
	for _, sh := range m.shards {
		reply := make(chan map[uint64]core.BranchStats, 1)
		op := func() {
			part := make(map[uint64]core.BranchStats)
			for _, s := range sh.sessions {
				for pc, bs := range s.eval.Metrics().ByPC {
					e := part[pc]
					e.PC = pc
					e.Count += bs.Count
					e.Taken += bs.Taken
					e.Mispredicts += bs.Mispredicts
					e.Filtered += bs.Filtered
					e.Region = e.Region || bs.Region
					part[pc] = e
				}
			}
			reply <- part
		}
		if err := m.enqueue(ctx, sh, shardOp{fn: op}, true); err != nil {
			continue
		}
		select {
		case part := <-reply:
			for pc, e := range part {
				a := agg[pc]
				if a == nil {
					a = &core.BranchStats{PC: pc}
					agg[pc] = a
				}
				a.Count += e.Count
				a.Taken += e.Taken
				a.Mispredicts += e.Mispredicts
				a.Filtered += e.Filtered
				a.Region = a.Region || e.Region
			}
		case <-ctx.Done():
		case <-m.done:
		}
	}
	rep := (&core.Metrics{ByPC: agg}).BranchReport(k)
	return rep.Top
}

// List returns summaries (no per-branch maps) of every live session.
func (m *sessionManager) List(ctx context.Context) ([]*SessionInfo, error) {
	var out []*SessionInfo
	for _, sh := range m.shards {
		sh := sh
		reply := make(chan []*SessionInfo, 1)
		op := func() {
			var batch []*SessionInfo
			for e := sh.lru.Front(); e != nil; e = e.Next() {
				batch = append(batch, e.Value.(*session).info(false))
			}
			reply <- batch
		}
		if err := m.enqueue(ctx, sh, shardOp{fn: op}, true); err != nil {
			return nil, err
		}
		select {
		case batch := <-reply:
			out = append(out, batch...)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// Live returns the number of resident sessions.
func (m *sessionManager) Live() int64 { return m.live.Load() }

// Bytes returns the approximate resident session memory.
func (m *sessionManager) Bytes() int64 { return m.bytes.Load() }

// QueueDepth returns the total number of queued, unprocessed ops.
func (m *sessionManager) QueueDepth() int {
	n := 0
	for _, sh := range m.shards {
		n += len(sh.ops)
	}
	return n
}

// Close drains every shard: new work is refused, queued ops complete,
// workers exit. With a spill store configured, every still-live session
// is then snapshotted to disk — a SIGTERM'd backend loses no state, and
// another backend sharing the spill directory can warm-restore its
// sessions. It returns the number of sessions that were still live.
func (m *sessionManager) Close() int64 {
	if m.closed.Swap(true) {
		return m.live.Load()
	}
	for _, sh := range m.shards {
		close(sh.quit)
	}
	m.wg.Wait()
	close(m.done)
	live := m.live.Load()
	if m.spill != nil {
		// Workers have exited, so this goroutine is the sole owner now.
		for _, sh := range m.shards {
			for _, s := range sh.sessions {
				sh.spill(s)
			}
		}
	}
	return live
}

// specBytes estimates a session's resident footprint from its predictor
// spec: the dominant cost is the counter/weight tables, approximated as
// two bytes per table entry. Per-branch stat maps are added as they grow.
func specBytes(s sim.Spec) int64 {
	n, err := sim.Parse(s.String()) // normalizes defaulted parameters
	if err != nil {
		return 1024
	}
	b := int64(1024)
	for _, bits := range []int{n.TableBits, n.PatBits} {
		if bits > 0 && bits <= 28 {
			b += 2 << uint(bits)
		}
	}
	if n.Kind == "gag" && n.HistBits > 0 && n.HistBits <= 28 {
		b += 2 << uint(n.HistBits)
	}
	return b
}
