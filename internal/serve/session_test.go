package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// mgrSession creates a session directly on the manager for white-box
// tests, bypassing the HTTP layer.
func mgrSession(t *testing.T, s *Server, spec string) string {
	t.Helper()
	cfg, err := testEvalOptions().Config()
	if err != nil {
		t.Fatal(err)
	}
	sp := sim.MustParse(spec)
	if cfg.Predictor, err = sp.New(); err != nil {
		t.Fatal(err)
	}
	inf, err := s.mgr.Create(context.Background(), "", sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inf.ID
}

// TestConcurrentSessions hammers the manager from many goroutines —
// several clients with private sessions, several sharing one session,
// and pollers reading metrics and listings throughout — and checks under
// -race that nothing is lost: private sessions end byte-identical to a
// direct replay, and the shared session accounts for every event fed.
func TestConcurrentSessions(t *testing.T) {
	s := MustNew(Config{Shards: 4, QueueDepth: 1024})
	defer s.Close()
	ctx := context.Background()
	tr := testTrace()
	events := tr.Events
	if len(events) > 400 {
		events = events[:400]
	}

	const (
		private = 6
		sharers = 4
		rounds  = 25
	)
	sharedID := mgrSession(t, s, "gshare:12:8")
	privateIDs := make([]string, private)
	for i := range privateIDs {
		privateIDs[i] = mgrSession(t, s, "gshare:12:8")
	}

	feed := func(id string) error {
		batch := append([]trace.Event(nil), events...)
		for {
			_, err := s.mgr.Feed(ctx, id, batch, tr.Insts, 0, false)
			if errors.Is(err, ErrBusy) {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, private+sharers)
	for _, id := range privateIDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := feed(id); err != nil {
					errs <- fmt.Errorf("private feed: %w", err)
					return
				}
			}
		}()
	}
	for i := 0; i < sharers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := feed(sharedID); err != nil {
					errs <- fmt.Errorf("shared feed: %w", err)
					return
				}
			}
		}()
	}
	// Pollers race reads against the feeders.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 3; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.mgr.Metrics(ctx, sharedID)
				s.mgr.List(ctx)
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := directMetrics(t, &trace.Trace{Events: events, Insts: tr.Insts}, "gshare:12:8", testEvalOptions(), rounds)
	for _, id := range privateIDs {
		inf, err := s.mgr.Metrics(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inf.Metrics, want) {
			t.Fatalf("private session %s metrics diverge from direct replay", id)
		}
	}
	inf, err := s.mgr.Metrics(ctx, sharedID)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := uint64(sharers * rounds * len(events))
	if inf.Events != wantEvents {
		t.Errorf("shared session events = %d, want %d", inf.Events, wantEvents)
	}
	var branches uint64
	for i := range events {
		if events[i].Kind == trace.KindBranch {
			branches++
		}
	}
	if got, want := inf.Metrics.Branches, branches*sharers*rounds; got != want {
		t.Errorf("shared session branches = %d, want %d (events lost)", got, want)
	}
	if inf.Metrics.Insts != tr.Insts*sharers*rounds {
		t.Errorf("shared session insts = %d, want %d", inf.Metrics.Insts, tr.Insts*sharers*rounds)
	}
}

// TestEvictionUnderLoad fills a one-shard table and checks both halves of
// the eviction contract: while every resident session is live, creation
// fails with ErrFull rather than evicting anyone; once a session has been
// idle past MinEvictIdle it is evicted to make room, and the session that
// was being actively fed the whole time keeps metrics identical to a
// direct replay — no metrics are lost for live sessions.
func TestEvictionUnderLoad(t *testing.T) {
	s := MustNew(Config{
		Shards:       1,
		MaxSessions:  2,
		SessionTTL:   time.Hour,
		MinEvictIdle: 50 * time.Millisecond,
	})
	defer s.Close()
	ctx := context.Background()
	tr := testTrace()
	events := tr.Events[:100]

	live := mgrSession(t, s, "gshare:12:8")
	idle := mgrSession(t, s, "bimodal:10")

	// Both sessions were just used: the table is full of live sessions,
	// so creating a third must fail instead of evicting one.
	cfg, _ := testEvalOptions().Config()
	cfg.Predictor = sim.MustParse("bimodal:10").MustNew()
	if _, err := s.mgr.Create(ctx, "", sim.MustParse("bimodal:10"), cfg); !errors.Is(err, ErrFull) {
		t.Fatalf("create over live sessions: err = %v, want ErrFull", err)
	}

	// Keep the live session hot until the idle one ages past MinEvictIdle.
	rounds := 0
	deadline := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(deadline) {
		batch := append([]trace.Event(nil), events...)
		if _, err := s.mgr.Feed(ctx, live, batch, tr.Insts, 0, false); err != nil {
			t.Fatal(err)
		}
		rounds++
		time.Sleep(2 * time.Millisecond)
	}

	// Now creation evicts the idle session — and only it.
	cfg2, _ := testEvalOptions().Config()
	cfg2.Predictor = sim.MustParse("bimodal:10").MustNew()
	if _, err := s.mgr.Create(ctx, "", sim.MustParse("bimodal:10"), cfg2); err != nil {
		t.Fatalf("create after idle aging: %v", err)
	}
	if _, err := s.mgr.Metrics(ctx, idle); !errors.Is(err, ErrNotFound) {
		t.Errorf("idle session: err = %v, want ErrNotFound (should be evicted)", err)
	}
	if got := s.tel.sessEvicted.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}

	inf, err := s.mgr.Metrics(ctx, live)
	if err != nil {
		t.Fatalf("live session lost to eviction: %v", err)
	}
	want := directMetrics(t, &trace.Trace{Events: events, Insts: tr.Insts}, "gshare:12:8", testEvalOptions(), rounds)
	if !reflect.DeepEqual(inf.Metrics, want) {
		t.Error("live session metrics diverge from direct replay after eviction pressure")
	}
}

// TestTTLExpiry checks the background sweeper drops idle sessions.
func TestTTLExpiry(t *testing.T) {
	s := MustNew(Config{Shards: 1, SessionTTL: 20 * time.Millisecond})
	defer s.Close()
	ctx := context.Background()
	id := mgrSession(t, s, "gshare:10:6")

	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := s.mgr.Metrics(ctx, id)
		if errors.Is(err, ErrNotFound) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("session never expired")
		}
		// Metrics touches the session, so back off past the TTL.
		time.Sleep(50 * time.Millisecond)
	}
	if got := s.tel.sessExpired.Value(); got != 1 {
		t.Errorf("expirations = %d, want 1", got)
	}
	if got := s.mgr.Live(); got != 0 {
		t.Errorf("live after expiry = %d, want 0", got)
	}
}

// TestFeedBackpressure wedges the single shard worker and checks that a
// full op queue rejects batches with ErrBusy instead of blocking, then
// drains cleanly once the worker resumes.
func TestFeedBackpressure(t *testing.T) {
	s := MustNew(Config{Shards: 1, QueueDepth: 1})
	defer s.Close()
	ctx := context.Background()
	id := mgrSession(t, s, "gshare:10:6")
	sh := s.mgr.shards[0]

	gate := make(chan struct{})
	if err := s.mgr.enqueue(ctx, sh, shardOp{fn: func() { <-gate }}, true); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the gate op up, then fill the queue.
	for len(sh.ops) != 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.mgr.enqueue(ctx, sh, shardOp{fn: func() {}}, true); err != nil {
		t.Fatal(err)
	}

	if _, err := s.mgr.Feed(ctx, id, nil, 0, 0, false); !errors.Is(err, ErrBusy) {
		t.Fatalf("feed into full queue: err = %v, want ErrBusy", err)
	}
	if got := s.mgr.QueueDepth(); got != 1 {
		t.Errorf("queue depth = %d, want 1", got)
	}

	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := s.mgr.Feed(ctx, id, nil, 0, 0, false); err == nil {
			break
		} else if !errors.Is(err, ErrBusy) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBlockingOpsHonorContext checks that queue-blocked non-batch ops
// respect context cancellation instead of hanging.
func TestBlockingOpsHonorContext(t *testing.T) {
	s := MustNew(Config{Shards: 1, QueueDepth: 1})
	defer s.Close()
	id := mgrSession(t, s, "gshare:10:6")
	sh := s.mgr.shards[0]

	gate := make(chan struct{})
	defer close(gate)
	if err := s.mgr.enqueue(context.Background(), sh, shardOp{fn: func() { <-gate }}, true); err != nil {
		t.Fatal(err)
	}
	for len(sh.ops) != 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.mgr.enqueue(context.Background(), sh, shardOp{fn: func() {}}, true); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.mgr.Metrics(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked op: err = %v, want DeadlineExceeded", err)
	}
}

func TestSpecBytes(t *testing.T) {
	small := specBytes(sim.MustParse("bimodal:10"))
	big := specBytes(sim.MustParse("bimodal:16"))
	if small <= 1024 || big <= small {
		t.Errorf("specBytes not monotone in table size: bimodal:10=%d bimodal:16=%d", small, big)
	}
}

func TestNewIDUnique(t *testing.T) {
	s := MustNew(Config{Shards: 1})
	defer s.Close()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := s.mgr.newID()
		if seen[id] {
			t.Fatalf("duplicate session id %q", id)
		}
		seen[id] = true
	}
}

// TestSchedulingPassGroupsSessionBatches pins the cross-session
// scheduling pass directly: with the shard worker held at a barrier,
// several batches for two sessions queue up, and releasing the barrier
// must apply them all in one pass — the per-session groups counted by
// the sched_grouped counter — with results identical to serial feeding.
func TestSchedulingPassGroupsSessionBatches(t *testing.T) {
	s := MustNew(Config{Shards: 1, QueueDepth: 64})
	defer s.Close()
	ctx := context.Background()
	batch := testTrace().Events
	if len(batch) > 300 {
		batch = batch[:300]
	}

	idA := mgrSession(t, s, "gshare:12:8")
	idB := mgrSession(t, s, "bimodal:12")
	sh := s.mgr.shardFor(idA) // one shard, so idB lives here too

	// Hold the worker inside a pass so the feeds below pile up in the
	// queue and the next pass sees them all at once.
	release := make(chan struct{})
	blocked := make(chan struct{})
	if err := s.mgr.enqueue(ctx, sh, shardOp{fn: func() { close(blocked); <-release }}, true); err != nil {
		t.Fatal(err)
	}
	<-blocked
	before := s.tel.schedGrouped.Value()

	const feedsA, feedsB = 3, 2
	var wg sync.WaitGroup
	errs := make(chan error, feedsA+feedsB)
	feed := func(id string) {
		defer wg.Done()
		res, err := s.mgr.Feed(ctx, id, append([]trace.Event(nil), batch...), 0, 0, false)
		if err == nil && res.Events != len(batch) {
			err = fmt.Errorf("ack for %d events, sent %d", res.Events, len(batch))
		}
		if err != nil {
			errs <- err
		}
	}
	for i := 0; i < feedsA; i++ {
		wg.Add(1)
		go feed(idA)
	}
	for i := 0; i < feedsB; i++ {
		wg.Add(1)
		go feed(idB)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.mgr.QueueDepth() < feedsA+feedsB {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d feeds queued behind the barrier", s.mgr.QueueDepth(), feedsA+feedsB)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All five batches formed one contiguous feed run: a group of 3 for
	// session A and a group of 2 for session B.
	if got := s.tel.schedGrouped.Value() - before; got != feedsA+feedsB {
		t.Errorf("sched_grouped advanced by %d, want %d", got, feedsA+feedsB)
	}
	for _, c := range []struct {
		id    string
		spec  string
		feeds int
	}{{idA, "gshare:12:8", feedsA}, {idB, "bimodal:12", feedsB}} {
		info, err := s.mgr.Metrics(ctx, c.id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Events != uint64(c.feeds*len(batch)) {
			t.Errorf("%s: %d events accounted, want %d", c.spec, info.Events, c.feeds*len(batch))
		}
		want := directMetrics(t, &trace.Trace{Events: batch}, c.spec, testEvalOptions(), c.feeds)
		if !reflect.DeepEqual(info.Metrics, want) {
			t.Errorf("%s: grouped-feed metrics diverge from direct replay", c.spec)
		}
	}
}
