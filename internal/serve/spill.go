package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/snap"
)

// spillStore is the durable side of the session table: a directory of
// P64S snapshot files, one per evicted session, named
// "<id>.<configkey>.p64s" so an operator can see at a glance which
// configuration a spilled session was trained under. Evicting to the
// store instead of dropping turns capacity pressure, idle expiry, and
// process shutdown into a cold/warm split rather than state loss: the
// next touch of a spilled session restores it from disk.
//
// The store itself is trivially concurrent (atomic byte/file counters
// plus O_EXCL-free atomic renames); ordering per session comes from the
// shard goroutines, which are the only writers for their sessions.
type spillStore struct {
	dir   string
	bytes atomic.Int64
	files atomic.Int64
}

const spillExt = ".p64s"

func newSpillStore(dir string) (*spillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	st := &spillStore{dir: dir}
	// Adopt snapshots already present (a restart, or another backend
	// sharing the directory) into the byte/file accounting.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), spillExt) {
			continue
		}
		if fi, err := e.Info(); err == nil {
			st.bytes.Add(fi.Size())
			st.files.Add(1)
		}
	}
	return st, nil
}

// validSessionID reports whether id is safe as a client-supplied session
// identifier. The charset excludes the "." used as the spill-filename
// separator and anything path-meaningful, so an ID can never escape the
// spill directory or collide with another ID's files.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (st *spillStore) path(id, key string) string {
	return filepath.Join(st.dir, id+"."+key+spillExt)
}

// find returns the spill file for a session ID, if one exists. IDs never
// contain "." or glob metacharacters (validSessionID, and the server's
// own generated form), so the pattern is exact on the ID part.
func (st *spillStore) find(id string) (string, bool) {
	matches, err := filepath.Glob(filepath.Join(st.dir, id+".*"+spillExt))
	if err != nil || len(matches) == 0 {
		return "", false
	}
	return matches[0], true
}

// write persists a snapshot atomically (temp file + rename), replacing
// any previous snapshot of the same session.
func (st *spillStore) write(id, key string, blob []byte) error {
	final := st.path(id, key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	st.bytes.Add(int64(len(blob)))
	st.files.Add(1)
	return nil
}

// load reads and decodes a session's spill file. The decoded snapshot's
// own checksum and config key guard against corruption and mixups; the
// caller decides whether a failure removes the file.
func (st *spillStore) load(id string) (*snap.Restored, string, error) {
	path, ok := st.find(id)
	if !ok {
		return nil, "", os.ErrNotExist
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, path, err
	}
	res, err := snap.Decode(blob)
	if err != nil {
		return nil, path, err
	}
	if res.Meta.SessionID != id {
		return nil, path, fmt.Errorf("%w: file %s holds session %q", snap.ErrCorrupt, filepath.Base(path), res.Meta.SessionID)
	}
	return res, path, nil
}

// removePath deletes one spill file and settles the accounting.
func (st *spillStore) removePath(path string) {
	fi, err := os.Stat(path)
	if err != nil {
		return
	}
	if os.Remove(path) == nil {
		st.bytes.Add(-fi.Size())
		st.files.Add(-1)
	}
}

// remove deletes a session's spill file, if any (client delete, or a
// session re-created over a stale snapshot).
func (st *spillStore) remove(id string) {
	if path, ok := st.find(id); ok {
		st.removePath(path)
	}
}

// has reports whether a spill file exists for the session ID.
func (st *spillStore) has(id string) bool {
	_, ok := st.find(id)
	return ok
}
