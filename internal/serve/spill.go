package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/snap"
)

// spillStore is the durable side of the session table: a directory of
// P64S snapshot files, one per evicted session, named
// "<id>.<configkey>.p64s" so an operator can see at a glance which
// configuration a spilled session was trained under. Evicting to the
// store instead of dropping turns capacity pressure, idle expiry, and
// process shutdown into a cold/warm split rather than state loss: the
// next touch of a spilled session restores it from disk.
//
// The store is trivially concurrent (atomic renames); ordering per
// session comes from the shard goroutines, which are the only writers
// for their sessions.
type spillStore struct {
	dir string
}

const spillExt = ".p64s"

func newSpillStore(dir string) (*spillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	if _, err := os.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	return &spillStore{dir: dir}, nil
}

// stats counts the snapshots on disk right now. The gauges read the
// directory instead of maintaining local deltas because several
// backends may share one spill dir — a failover peer restoring (and
// deleting) snapshots this process wrote would drift any local
// accounting negative. Directories hold at most the fleet's session
// cap, so a scrape-time ReadDir stays cheap.
func (st *spillStore) stats() (files, bytes int64) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), spillExt) {
			continue
		}
		if fi, err := e.Info(); err == nil {
			files++
			bytes += fi.Size()
		}
	}
	return files, bytes
}

// validSessionID reports whether id is safe as a client-supplied session
// identifier. The charset excludes the "." used as the spill-filename
// separator and anything path-meaningful, so an ID can never escape the
// spill directory or collide with another ID's files.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (st *spillStore) path(id, key string) string {
	return filepath.Join(st.dir, id+"."+key+spillExt)
}

// find returns the spill file for a session ID, if one exists. IDs never
// contain "." or glob metacharacters (validSessionID, and the server's
// own generated form), so the pattern is exact on the ID part.
func (st *spillStore) find(id string) (string, bool) {
	matches, err := filepath.Glob(filepath.Join(st.dir, id+".*"+spillExt))
	if err != nil || len(matches) == 0 {
		return "", false
	}
	return matches[0], true
}

// write persists a snapshot atomically (temp file + rename), replacing
// any previous snapshot of the same session.
func (st *spillStore) write(id, key string, blob []byte) error {
	final := st.path(id, key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// load reads and decodes a session's spill file. The decoded snapshot's
// own checksum and config key guard against corruption and mixups; the
// caller decides whether a failure removes the file.
func (st *spillStore) load(id string) (*snap.Restored, string, error) {
	path, ok := st.find(id)
	if !ok {
		return nil, "", os.ErrNotExist
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, path, err
	}
	res, err := snap.Decode(blob)
	if err != nil {
		return nil, path, err
	}
	if res.Meta.SessionID != id {
		return nil, path, fmt.Errorf("%w: file %s holds session %q", snap.ErrCorrupt, filepath.Base(path), res.Meta.SessionID)
	}
	return res, path, nil
}

// removePath deletes one spill file.
func (st *spillStore) removePath(path string) {
	os.Remove(path)
}

// remove deletes a session's spill file, if any (client delete, or a
// session re-created over a stale snapshot).
func (st *spillStore) remove(id string) {
	if path, ok := st.find(id); ok {
		st.removePath(path)
	}
}

// has reports whether a spill file exists for the session ID.
func (st *spillStore) has(id string) bool {
	_, ok := st.find(id)
	return ok
}
