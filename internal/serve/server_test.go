package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace lazily collects one if-converted workload trace shared by
// the package's tests.
var testTrace = sync.OnceValue(func() *trace.Trace {
	p, _, err := ifconv.Convert(workload.ByNameMust("scan").Build(), ifconv.Config{})
	if err != nil {
		panic(err)
	}
	tr, err := trace.Collect(p, 0)
	if err != nil {
		panic(err)
	}
	return tr
})

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: got %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response JSON %q: %v", method, url, raw, err)
		}
	}
}

func testEvalOptions() EvalOptions {
	return EvalOptions{SFPF: true, PGU: "all", PerBranch: true}
}

func directMetrics(t *testing.T, tr *trace.Trace, spec string, opts EvalOptions, replays int) core.Metrics {
	t.Helper()
	cfg, err := opts.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Predictor, err = sim.MustParse(spec).New(); err != nil {
		t.Fatal(err)
	}
	e := core.NewEvaluator(cfg)
	for r := 0; r < replays; r++ {
		for i := range tr.Events {
			e.Feed(&tr.Events[i])
		}
		e.AddInsts(tr.Insts)
	}
	return e.Metrics()
}

// TestSessionLifecycle walks the full session flow — create, JSON batch,
// binary batch, incremental read, delete — and requires the final
// metrics to be identical to feeding the same events through
// core.Evaluator directly.
func TestSessionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	tr := testTrace()

	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		SessionRequest{Spec: "gshare:12:8", EvalOptions: testEvalOptions()},
		http.StatusCreated, &sess)
	if sess.ID == "" || sess.Spec != "gshare:12:8" {
		t.Fatalf("bad session: %+v", sess)
	}

	// Replay 1: JSON events in two batches, instruction count on the last.
	half := len(tr.Events) / 2
	batch := func(events []trace.Event, insts uint64) BatchRequest {
		req := BatchRequest{Insts: insts, Events: make([]EventJSON, len(events))}
		for i := range events {
			req.Events[i] = EventToJSON(&events[i])
		}
		return req
	}
	var ack BatchResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", batch(tr.Events[:half], 0), http.StatusOK, &ack)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events?metrics=1", batch(tr.Events[half:], tr.Insts), http.StatusOK, &ack)
	if ack.TotalEvents != uint64(len(tr.Events)) {
		t.Fatalf("total events %d, want %d", ack.TotalEvents, len(tr.Events))
	}
	if ack.Metrics == nil || ack.Metrics.Branches == 0 {
		t.Fatalf("no incremental metrics in batch ack: %+v", ack)
	}

	// Replay 2: the same events as one binary P64T batch.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/events", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch: %d", resp.StatusCode)
	}

	// Incremental read, then close; both must agree with the direct path.
	var got SessionJSON
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &got)
	if got.Events != 2*uint64(len(tr.Events)) {
		t.Fatalf("session events %d, want %d", got.Events, 2*len(tr.Events))
	}
	var closed SessionJSON
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &closed)
	if closed.Metrics == nil {
		t.Fatal("no final metrics")
	}
	want := directMetrics(t, tr, "gshare:12:8", testEvalOptions(), 2)
	gotMetrics, err := closed.Metrics.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, gotMetrics) {
		t.Errorf("served metrics diverge from direct evaluation:\nserved: %+v\ndirect: %+v", gotMetrics, want)
	}
	wantJSON, _ := json.Marshal(MetricsToJSON(want))
	gotJSON, _ := json.Marshal(*closed.Metrics)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("served metrics JSON not byte-identical:\nserved: %s\ndirect: %s", gotJSON, wantJSON)
	}

	// The session is gone now.
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusNotFound, nil)
}

// TestErrorEnvelopes checks the consistent JSON error envelope across
// failure classes.
func TestErrorEnvelopes(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxBody: 512})
	check := func(method, url string, body any, wantCode int, wantErrCode string) {
		t.Helper()
		var envelope ErrorBody
		doJSON(t, method, url, body, wantCode, &envelope)
		if envelope.Error.Code != wantErrCode {
			t.Errorf("%s %s: error code %q, want %q (message %q)",
				method, url, envelope.Error.Code, wantErrCode, envelope.Error.Message)
		}
	}
	check("POST", ts.URL+"/v1/sessions", SessionRequest{Spec: "nope"}, http.StatusBadRequest, "bad_spec")
	check("POST", ts.URL+"/v1/sessions", SessionRequest{Spec: "gshare", EvalOptions: EvalOptions{PGU: "everything"}},
		http.StatusBadRequest, "bad_request")
	check("GET", ts.URL+"/v1/sessions/s-missing", nil, http.StatusNotFound, "not_found")
	check("DELETE", ts.URL+"/v1/sessions/s-missing", nil, http.StatusNotFound, "not_found")
	check("POST", ts.URL+"/v1/sessions/s-missing/events", BatchRequest{}, http.StatusNotFound, "not_found")
	check("POST", ts.URL+"/v1/sweep", SweepRequest{}, http.StatusBadRequest, "bad_request")
	check("POST", ts.URL+"/v1/sweep", SweepRequest{Specs: []string{"gshare"}, Workload: "nope"},
		http.StatusBadRequest, "bad_workload")

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", resp.StatusCode)
	}

	// Oversized body → 413.
	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions", SessionRequest{Spec: "gshare"}, http.StatusCreated, &sess)
	big := BatchRequest{Events: make([]EventJSON, 512)}
	for i := range big.Events {
		big.Events[i] = EventJSON{Kind: "branch"}
	}
	check("POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", big, http.StatusRequestEntityTooLarge, "body_too_large")

	// Bad event kind.
	check("POST", ts.URL+"/v1/sessions/"+sess.ID+"/events",
		BatchRequest{Events: []EventJSON{{Kind: "jump"}}}, http.StatusBadRequest, "bad_event")
}

// TestSweepEndpoint sweeps a grid over a named workload and over an
// uploaded binary trace, and checks rows come back in spec order with
// metrics identical to running the engine directly.
func TestSweepEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	specs := []string{"bimodal:10", "gshare:10:6", "taken"}

	var resp SweepResponse
	doJSON(t, "POST", ts.URL+"/v1/sweep",
		SweepRequest{Specs: specs, Workload: "scan", Convert: true, EvalOptions: testEvalOptions()},
		http.StatusOK, &resp)
	if len(resp.Rows) != len(specs) {
		t.Fatalf("got %d rows, want %d", len(resp.Rows), len(specs))
	}
	tr := testTrace()
	for i, row := range resp.Rows {
		if row.Spec != sim.MustParse(specs[i]).String() {
			t.Errorf("row %d spec %q, want %q", i, row.Spec, specs[i])
		}
		want := MetricsToJSON(directMetrics(t, tr, specs[i], testEvalOptions(), 1))
		if !reflect.DeepEqual(want, row.Metrics) {
			t.Errorf("row %d (%s) diverges from direct evaluation", i, row.Spec)
		}
	}

	// Binary upload form: specs and options in the query string.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/sweep?spec=bimodal:10,gshare:10:6&sfpf=1&pgu=all&per_branch=1"
	httpResp, err := http.Post(url, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var up SweepResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&up); err != nil || httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary sweep: status %d err %v", httpResp.StatusCode, err)
	}
	if len(up.Rows) != 2 || up.Events != len(tr.Events) {
		t.Fatalf("binary sweep response: %d rows, %d events", len(up.Rows), up.Events)
	}
	if !reflect.DeepEqual(up.Rows[0].Metrics, MetricsToJSON(directMetrics(t, tr, "bimodal:10", testEvalOptions(), 1))) {
		t.Error("uploaded-trace sweep diverges from direct evaluation")
	}
}

// TestSweepTimeout forces a tiny per-request deadline and expects 504
// with the timeout error code.
func TestSweepTimeout(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	var envelope ErrorBody
	doJSON(t, "POST", ts.URL+"/v1/sweep",
		SweepRequest{
			Specs:    []string{"gshare:14:12", "gshare:14:10", "gshare:14:8", "gshare:14:6"},
			Workload: "scan", Convert: true, TimeoutMS: 1,
		},
		http.StatusGatewayTimeout, &envelope)
	if envelope.Error.Code != "timeout" {
		t.Errorf("error code %q, want timeout", envelope.Error.Code)
	}
}

// TestSweepSpecLimit rejects oversized grids.
func TestSweepSpecLimit(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxSweepSpecs: 2})
	var envelope ErrorBody
	doJSON(t, "POST", ts.URL+"/v1/sweep",
		SweepRequest{Specs: []string{"taken", "nottaken", "bimodal"}, Workload: "scan"},
		http.StatusBadRequest, &envelope)
}

// TestRateLimit exhausts a one-token bucket and expects 429.
func TestRateLimit(t *testing.T) {
	ts, _ := newTestServer(t, Config{RatePerSec: 0.001, RateBurst: 1})
	doJSON(t, "GET", ts.URL+"/v1/predictors", nil, http.StatusOK, nil)
	var envelope ErrorBody
	doJSON(t, "GET", ts.URL+"/v1/predictors", nil, http.StatusTooManyRequests, &envelope)
	if envelope.Error.Code != "rate_limited" {
		t.Errorf("error code %q, want rate_limited", envelope.Error.Code)
	}
	// /healthz and /metrics are not rate limited.
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
}

// TestListingsAndHealth covers the discovery endpoints.
func TestListingsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	var preds PredictorsResponse
	doJSON(t, "GET", ts.URL+"/v1/predictors", nil, http.StatusOK, &preds)
	if len(preds.Kinds) == 0 || preds.Usage == "" {
		t.Errorf("empty predictor listing: %+v", preds)
	}
	var wls []WorkloadJSON
	doJSON(t, "GET", ts.URL+"/v1/workloads", nil, http.StatusOK, &wls)
	if len(wls) == 0 {
		t.Error("empty workload listing")
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)

	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions", SessionRequest{Spec: "bimodal"}, http.StatusCreated, &sess)
	var list struct {
		Count    int           `json:"count"`
		Sessions []SessionJSON `json:"sessions"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Count != 1 || len(list.Sessions) != 1 || list.Sessions[0].ID != sess.ID {
		t.Errorf("bad session list: %+v", list)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition carries the
// request counters, latency histograms, and session gauges the smoke
// test consumes.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions", SessionRequest{Spec: "gshare"}, http.StatusCreated, &sess)
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`bpservd_requests_total{endpoint="create_session",code="201"} 1`,
		`bpservd_request_seconds_bucket{endpoint="get_session",le="+Inf"} 1`,
		`bpservd_request_seconds_count{endpoint="create_session"} 1`,
		"bpservd_sessions_live 1",
		"bpservd_sessions_created_total 1",
		"bpservd_queue_depth 0",
		"bpservd_session_bytes",
		"bpservd_events_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("bad /metrics content type %q", resp.Header.Get("Content-Type"))
	}
}

// TestPprofWired checks the profiling endpoints answer.
func TestPprofWired(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: %d", resp.StatusCode)
	}
}

// TestRequestLogging checks one structured line per request reaches the
// configured logger.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	ts, _ := newTestServer(t, Config{Logger: log.New(logWriter, "", 0)})
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "endpoint=healthz status=200") {
		t.Errorf("no structured request log line, got %q", buf.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestGracefulDrain floods sessions with concurrent batches while the
// server shuts down; every batch acknowledged to a client must have been
// applied (the events counter agrees exactly), and late batches fail
// with the shutting-down error instead of hanging.
func TestGracefulDrain(t *testing.T) {
	s := MustNew(Config{Shards: 2, QueueDepth: 256})
	ctx := context.Background()
	tr := testTrace()
	events := tr.Events[:200]

	ids := make([]string, 4)
	for i := range ids {
		cfg, _ := testEvalOptions().Config()
		cfg.Predictor = sim.For("gshare", 10, 6).MustNew()
		inf, err := s.mgr.Create(ctx, "", sim.For("gshare", 10, 6), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = inf.ID
	}

	var accepted atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := append([]trace.Event(nil), events...)
				if _, err := s.mgr.Feed(ctx, id, batch, 0, 0, false); err == nil {
					accepted.Add(uint64(len(events)))
				} else {
					return // ErrClosing or ErrBusy near shutdown
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Close()
	close(stop)
	wg.Wait()

	if got, want := s.tel.events.Value(), accepted.Load(); got != want {
		t.Errorf("drained events %d != acknowledged events %d", got, want)
	}
	if _, err := s.mgr.Feed(ctx, ids[0], nil, 0, 0, false); err == nil {
		t.Error("feed after Close succeeded")
	}
}
