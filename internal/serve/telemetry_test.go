package serve

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// handStatsBatch is a hand-computed trace against the static
// always-taken predictor: every not-taken execution mispredicts.
//
//	PC 0x100: 5 runs, 2 taken -> 3 mispredicts
//	PC 0x200: 4 runs, 1 taken -> 3 mispredicts (ties 0x100; higher PC ranks second)
//	PC 0x300: 3 runs, 3 taken -> 0 mispredicts
//
// Totals: 12 branches, 6 mispredicts, accuracy 0.5.
func handStatsBatch() BatchRequest {
	taken := map[uint64][]bool{
		0x100: {true, false, false, true, false},
		0x200: {false, true, false, false},
		0x300: {true, true, true},
	}
	var req BatchRequest
	step := uint64(0)
	for _, pc := range []uint64{0x100, 0x200, 0x300} {
		for _, tk := range taken[pc] {
			step++
			req.Events = append(req.Events, EventJSON{Kind: "branch", Step: step, PC: pc, Taken: tk})
		}
	}
	req.Insts = step
	return req
}

// TestStatsEndpoint verifies the top-K mispredicted ranking against the
// hand-computed trace above.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		SessionRequest{Spec: "taken", EvalOptions: EvalOptions{PerBranch: true}},
		http.StatusCreated, &sess)
	var ack BatchResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", handStatsBatch(), http.StatusOK, &ack)

	var st SessionStatsJSON
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID+"/stats?k=2", nil, http.StatusOK, &st)
	if st.ID != sess.ID || !st.PerBranch {
		t.Fatalf("bad report header: %+v", st)
	}
	if st.Events != 12 || st.Branches != 12 || st.StaticBranches != 3 || st.Mispredicts != 6 {
		t.Fatalf("totals: %+v", st)
	}
	if st.Accuracy != 0.5 {
		t.Errorf("accuracy %f, want 0.5", st.Accuracy)
	}
	if len(st.Top) != 2 {
		t.Fatalf("top has %d entries, want 2 (k=2)", len(st.Top))
	}
	want := []BranchRankJSON{
		{PC: "0x100", Count: 5, Taken: 2, Mispredicts: 3, MispredictRate: 0.6},
		{PC: "0x200", Count: 4, Taken: 1, Mispredicts: 3, MispredictRate: 0.75},
	}
	for i, w := range want {
		if st.Top[i] != w {
			t.Errorf("top[%d] = %+v, want %+v", i, st.Top[i], w)
		}
	}

	// The full ranking includes the perfectly predicted branch too.
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID+"/stats", nil, http.StatusOK, &st)
	if len(st.Top) != 3 || st.Top[2].PC != "0x300" || st.Top[2].Mispredicts != 0 {
		t.Errorf("full ranking tail: %+v", st.Top)
	}

	// Bad k is a 400; unknown session a 404.
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID+"/stats?k=0", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/v1/sessions/nope/stats", nil, http.StatusNotFound, nil)

	// A session without per-branch collection reports empty, not an error.
	var plain SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		SessionRequest{Spec: "taken"}, http.StatusCreated, &plain)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+plain.ID+"/events", handStatsBatch(), http.StatusOK, &ack)
	var empty SessionStatsJSON
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+plain.ID+"/stats", nil, http.StatusOK, &empty)
	if empty.PerBranch || empty.StaticBranches != 0 || len(empty.Top) != 0 {
		t.Errorf("per_branch-less report not empty: %+v", empty)
	}
}

// TestScrapeLintAndH2P drives real traffic, then requires the full
// /metrics page to pass the strict exposition lint and the aggregate
// H2P families to agree with the hand-computed ranking.
func TestScrapeLintAndH2P(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	var sess SessionJSON
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		SessionRequest{Spec: "taken", EvalOptions: EvalOptions{PerBranch: true}},
		http.StatusCreated, &sess)
	var ack BatchResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", handStatsBatch(), http.StatusOK, &ack)
	doJSON(t, "GET", ts.URL+"/v1/sessions/nope", nil, http.StatusNotFound, nil) // a 404 series too

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseText(bytes.NewReader(page))
	if err != nil {
		t.Fatalf("scrape fails lint: %v\n%s", err, page)
	}
	byName := map[string]telemetry.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	if f, ok := byName["bpservd_h2p_mispredicts"]; !ok {
		t.Error("no bpservd_h2p_mispredicts family")
	} else {
		if s := f.Sample("bpservd_h2p_mispredicts", map[string]string{"pc": "0x100"}); s == nil || s.Value != 3 {
			t.Errorf("h2p_mispredicts{pc=0x100} = %+v, want 3", s)
		}
		if len(f.Samples) != 3 {
			t.Errorf("h2p_mispredicts has %d series, want 3", len(f.Samples))
		}
	}
	if f, ok := byName["bpservd_h2p_events"]; !ok {
		t.Error("no bpservd_h2p_events family")
	} else if s := f.Sample("bpservd_h2p_events", map[string]string{"pc": "0x200"}); s == nil || s.Value != 4 {
		t.Errorf("h2p_events{pc=0x200} = %+v, want 4", s)
	}

	if f, ok := byName["build_info"]; !ok || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Errorf("build_info missing or malformed: %+v", f)
	} else if f.Samples[0].Label("version") == "" || f.Samples[0].Label("hash") == "" {
		t.Errorf("build_info labels: %+v", f.Samples[0].Labels)
	}

	reqs, ok := byName["bpservd_requests_total"]
	if !ok {
		t.Fatal("no bpservd_requests_total family")
	}
	if s := reqs.Sample("bpservd_requests_total", map[string]string{"endpoint": "get_session", "code": "404"}); s == nil || s.Value != 1 {
		t.Errorf("requests{get_session,404} = %+v, want 1", s)
	}
	if f, ok := byName["bpservd_request_seconds"]; !ok {
		t.Error("no per-endpoint latency histogram")
	} else if s := f.Sample("bpservd_request_seconds_count", map[string]string{"endpoint": "post_events"}); s == nil || s.Value != 1 {
		t.Errorf("request_seconds_count{post_events} = %+v, want 1", s)
	}
}

// TestRequestIDPropagation checks the correlation-ID contract: a valid
// client ID is kept (response header, error envelope, log line), an
// invalid one is replaced by a minted ID.
func TestRequestIDPropagation(t *testing.T) {
	var buf bytes.Buffer
	ts, _ := newTestServer(t, Config{Logger: log.New(&buf, "", 0)})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions/ghost", nil)
	req.Header.Set(telemetry.RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != "trace-me-42" {
		t.Errorf("response rid %q, want trace-me-42", got)
	}
	if !strings.Contains(string(body), `"request_id":"trace-me-42"`) {
		t.Errorf("error envelope misses request_id: %s", body)
	}
	if !strings.Contains(buf.String(), "rid=trace-me-42") {
		t.Errorf("log line misses rid: %s", buf.String())
	}

	// An out-of-charset ID is not trusted into logs; a minted one
	// replaces it.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(telemetry.RequestIDHeader, "bad id, spaces not allowed!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get(telemetry.RequestIDHeader)
	if !telemetry.ValidRequestID(got) || !strings.HasPrefix(got, "bpservd-") {
		t.Errorf("invalid client rid not replaced: %q", got)
	}
}

// TestSlowRequestLog checks the tracer emits the structured slow line
// once a request crosses the threshold.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(100, 0)
	clock := func() time.Time {
		now = now.Add(50 * time.Millisecond) // each Now() call advances: every request looks slow
		return now
	}
	ts, _ := newTestServer(t, Config{Logger: log.New(&buf, "", 0), SlowRequest: 10 * time.Millisecond, Now: clock})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "slow_request service=bpservd endpoint=healthz") {
		t.Errorf("no slow_request line: %s", buf.String())
	}
}

// TestRequestAccountingAllocFree pins the replacement for the old
// fmt.Sprintf-keyed countRequest: with handles resolved per endpoint at
// route-registration time, the steady-state per-request accounting must
// not allocate.
func TestRequestAccountingAllocFree(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	hist := s.tel.latency.With("bench")
	codes := telemetry.NewCodeCounter(s.tel.requests, "bench")
	codes.Code(200).Inc() // warm the status-code handle cache
	allocs := testing.AllocsPerRun(1000, func() {
		codes.Code(200).Inc()
		hist.ObserveDuration(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("request accounting allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkRequestAccounting measures the per-request metric cost that
// replaced the mutex-plus-Sprintf map path.
func BenchmarkRequestAccounting(b *testing.B) {
	s := MustNew(Config{})
	defer s.Close()
	hist := s.tel.latency.With("bench")
	codes := telemetry.NewCodeCounter(s.tel.requests, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codes.Code(200).Inc()
		hist.ObserveDuration(137 * time.Microsecond)
	}
}
