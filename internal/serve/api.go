package serve

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Wire types for the JSON API. The binary alternative for event batches
// and sweep uploads is the P64T trace format (internal/trace), selected
// by Content-Type: application/octet-stream.

// EvalOptions are the mechanism knobs shared by session creation and
// sweep requests; they mirror core.EvalConfig minus the predictor.
type EvalOptions struct {
	SFPF          bool    `json:"sfpf,omitempty"`
	FilterTrue    bool    `json:"filter_true,omitempty"`
	TrainFiltered bool    `json:"train_filtered,omitempty"`
	ResolveDelay  *uint64 `json:"resolve_delay,omitempty"` // default core.DefaultResolveDelay
	PGU           string  `json:"pgu,omitempty"`           // off | region | branch | all
	PGUDelay      *uint64 `json:"pgu_delay,omitempty"`     // default core.DefaultPGUDelay
	PerBranch     bool    `json:"per_branch,omitempty"`
}

// Config builds the evaluation config (without a predictor).
func (o EvalOptions) Config() (core.EvalConfig, error) {
	pol, err := core.ParsePGUPolicy(o.PGU)
	if err != nil {
		return core.EvalConfig{}, err
	}
	cfg := core.EvalConfig{
		UseSFPF:       o.SFPF,
		FilterTrue:    o.FilterTrue,
		TrainFiltered: o.TrainFiltered,
		ResolveDelay:  core.DefaultResolveDelay,
		PGU:           pol,
		PGUDelay:      core.DefaultPGUDelay,
		PerBranch:     o.PerBranch,
	}
	if o.ResolveDelay != nil {
		cfg.ResolveDelay = *o.ResolveDelay
	}
	if o.PGUDelay != nil {
		cfg.PGUDelay = *o.PGUDelay
	}
	return cfg, nil
}

// SessionRequest creates a session bound to one predictor spec. ID, if
// set, names the session explicitly ([A-Za-z0-9_-], at most 64 bytes;
// 409 if taken) — the bprouter supplies IDs so it can place sessions on
// its hash ring before they exist. An empty ID lets the server generate
// one.
type SessionRequest struct {
	ID   string `json:"id,omitempty"`
	Spec string `json:"spec"`
	EvalOptions
}

// SessionJSON is the wire form of SessionInfo.
type SessionJSON struct {
	ID       string       `json:"id"`
	Spec     string       `json:"spec"`
	Events   uint64       `json:"events"`
	Batches  uint64       `json:"batches"`
	LastSeq  uint64       `json:"last_seq,omitempty"`
	Created  time.Time    `json:"created"`
	LastUsed time.Time    `json:"last_used"`
	Metrics  *MetricsJSON `json:"metrics,omitempty"`
}

func sessionJSON(inf *SessionInfo, withMetrics bool) SessionJSON {
	out := SessionJSON{
		ID: inf.ID, Spec: inf.Spec,
		Events: inf.Events, Batches: inf.Batches, LastSeq: inf.LastSeq,
		Created: inf.Created, LastUsed: inf.LastUsed,
	}
	if withMetrics {
		mj := MetricsToJSON(inf.Metrics)
		out.Metrics = &mj
	}
	return out
}

// EventJSON is the wire form of one trace event.
type EventJSON struct {
	Kind string `json:"kind"` // "branch" | "preddef"
	Step uint64 `json:"step"`
	PC   uint64 `json:"pc"`

	Taken             bool   `json:"taken,omitempty"`
	Guard             uint8  `json:"guard,omitempty"`
	GuardVal          bool   `json:"guard_val,omitempty"`
	GuardDist         uint64 `json:"guard_dist,omitempty"`
	Region            bool   `json:"region,omitempty"`
	GuardImpliesTaken bool   `json:"guard_implies_taken,omitempty"`

	Executed          bool `json:"executed,omitempty"`
	Value             bool `json:"value,omitempty"`
	FeedsBranch       bool `json:"feeds_branch,omitempty"`
	FeedsRegionBranch bool `json:"feeds_region_branch,omitempty"`
}

// EventToJSON converts a trace event to its wire form.
func EventToJSON(ev *trace.Event) EventJSON {
	kind := "branch"
	if ev.Kind == trace.KindPredDef {
		kind = "preddef"
	}
	return EventJSON{
		Kind: kind, Step: ev.Step, PC: ev.PC,
		Taken: ev.Taken, Guard: uint8(ev.Guard), GuardVal: ev.GuardVal,
		GuardDist: ev.GuardDist, Region: ev.Region,
		GuardImpliesTaken: ev.GuardImpliesTaken,
		Executed:          ev.Executed, Value: ev.Value,
		FeedsBranch: ev.FeedsBranch, FeedsRegionBranch: ev.FeedsRegionBranch,
	}
}

// Event converts the wire form back to a trace event.
func (e EventJSON) Event() (trace.Event, error) {
	ev := trace.Event{
		Step: e.Step, PC: e.PC,
		Taken: e.Taken, Guard: isa.PReg(e.Guard), GuardVal: e.GuardVal,
		GuardDist: e.GuardDist, Region: e.Region,
		GuardImpliesTaken: e.GuardImpliesTaken,
		Executed:          e.Executed, Value: e.Value,
		FeedsBranch: e.FeedsBranch, FeedsRegionBranch: e.FeedsRegionBranch,
	}
	switch e.Kind {
	case "branch":
		ev.Kind = trace.KindBranch
	case "preddef":
		ev.Kind = trace.KindPredDef
	default:
		return trace.Event{}, fmt.Errorf("unknown event kind %q (branch, preddef)", e.Kind)
	}
	return ev, nil
}

// BatchRequest feeds events into a session (JSON form). Insts credits
// dynamic instructions executed over the batch, so MPKI stays meaningful.
// Seq, when nonzero, numbers the batch in a per-session monotonically
// increasing sequence (1, 2, 3, ...): a batch at or below the session's
// last applied seq is acknowledged without being re-applied, making
// client retries after a failover exactly-once; a gap is refused with
// 409. The binary form passes ?seq=N instead.
type BatchRequest struct {
	Events []EventJSON `json:"events"`
	Insts  uint64      `json:"insts,omitempty"`
	Seq    uint64      `json:"seq,omitempty"`
}

// BatchResponse acknowledges an accepted batch. Duplicate marks a
// retried batch that was already applied (seq at or below the session's
// high-water mark); its events were not fed again.
type BatchResponse struct {
	Events      int          `json:"events"`
	TotalEvents uint64       `json:"total_events"`
	Duplicate   bool         `json:"duplicate,omitempty"`
	Metrics     *MetricsJSON `json:"metrics,omitempty"`
}

// BranchStatsJSON is the wire form of core.BranchStats.
type BranchStatsJSON struct {
	PC          uint64 `json:"pc"`
	Count       uint64 `json:"count"`
	Taken       uint64 `json:"taken"`
	Mispredicts uint64 `json:"mispredicts"`
	Filtered    uint64 `json:"filtered"`
	Region      bool   `json:"region,omitempty"`
}

// MetricsJSON is the wire form of core.Metrics plus derived rates. The
// conversion is lossless over the counter fields: MetricsToJSON followed
// by Metrics reproduces the original struct exactly, which is what the
// serve-vs-direct oracle check relies on.
type MetricsJSON struct {
	Insts             uint64 `json:"insts"`
	Branches          uint64 `json:"branches"`
	Mispredicts       uint64 `json:"mispredicts"`
	RegionBranches    uint64 `json:"region_branches"`
	RegionMispredicts uint64 `json:"region_mispredicts"`
	Filtered          uint64 `json:"filtered"`
	FilteredTrue      uint64 `json:"filtered_true"`
	FilterErrors      uint64 `json:"filter_errors"`
	PredDefs          uint64 `json:"pred_defs"`
	InsertedBits      uint64 `json:"inserted_bits"`

	MispredictRate float64 `json:"mispredict_rate"`
	MPKI           float64 `json:"mpki"`

	ByPC map[string]BranchStatsJSON `json:"by_pc,omitempty"`
}

// MetricsToJSON converts evaluation metrics to the wire form.
func MetricsToJSON(m core.Metrics) MetricsJSON {
	out := MetricsJSON{
		Insts: m.Insts, Branches: m.Branches, Mispredicts: m.Mispredicts,
		RegionBranches: m.RegionBranches, RegionMispredicts: m.RegionMispredicts,
		Filtered: m.Filtered, FilteredTrue: m.FilteredTrue, FilterErrors: m.FilterErrors,
		PredDefs: m.PredDefs, InsertedBits: m.InsertedBits,
		MispredictRate: m.MispredictRate(), MPKI: m.MPKI(),
	}
	if m.ByPC != nil {
		out.ByPC = make(map[string]BranchStatsJSON, len(m.ByPC))
		for pc, bs := range m.ByPC {
			out.ByPC[strconv.FormatUint(pc, 10)] = BranchStatsJSON{
				PC: bs.PC, Count: bs.Count, Taken: bs.Taken,
				Mispredicts: bs.Mispredicts, Filtered: bs.Filtered, Region: bs.Region,
			}
		}
	}
	return out
}

// Metrics converts the wire form back to core.Metrics (derived rate
// fields are recomputed by the methods on core.Metrics, not stored).
func (j MetricsJSON) Metrics() (core.Metrics, error) {
	m := core.Metrics{
		Insts: j.Insts, Branches: j.Branches, Mispredicts: j.Mispredicts,
		RegionBranches: j.RegionBranches, RegionMispredicts: j.RegionMispredicts,
		Filtered: j.Filtered, FilteredTrue: j.FilteredTrue, FilterErrors: j.FilterErrors,
		PredDefs: j.PredDefs, InsertedBits: j.InsertedBits,
	}
	if j.ByPC != nil {
		m.ByPC = make(map[uint64]*core.BranchStats, len(j.ByPC))
		for key, bs := range j.ByPC {
			pc, err := strconv.ParseUint(key, 10, 64)
			if err != nil {
				return core.Metrics{}, fmt.Errorf("bad by_pc key %q: %w", key, err)
			}
			m.ByPC[pc] = &core.BranchStats{
				PC: bs.PC, Count: bs.Count, Taken: bs.Taken,
				Mispredicts: bs.Mispredicts, Filtered: bs.Filtered, Region: bs.Region,
			}
		}
	}
	return m, nil
}

// SessionStatsJSON is the per-branch introspection report of one
// session (GET /v1/sessions/{id}/stats): aggregate totals plus the
// hardest branches ranked by misprediction count. The report covers
// only branch events (preddefs are excluded), and is empty unless the
// session was created with per_branch collection.
type SessionStatsJSON struct {
	ID             string           `json:"id"`
	Spec           string           `json:"spec"`
	Events         uint64           `json:"events"`   // lifetime events fed (branches + preddefs)
	Branches       uint64           `json:"branches"` // branch executions covered by the report
	StaticBranches int              `json:"static_branches"`
	Mispredicts    uint64           `json:"mispredicts"`
	Accuracy       float64          `json:"accuracy"`
	PerBranch      bool             `json:"per_branch"`
	Top            []BranchRankJSON `json:"top,omitempty"`
}

// BranchRankJSON is one ranked entry of the stats report. PC is
// hex-formatted ("0x401a30") for direct use against a disassembly.
type BranchRankJSON struct {
	PC             string  `json:"pc"`
	Count          uint64  `json:"count"`
	Taken          uint64  `json:"taken"`
	Mispredicts    uint64  `json:"mispredicts"`
	Filtered       uint64  `json:"filtered,omitempty"`
	Region         bool    `json:"region,omitempty"`
	MispredictRate float64 `json:"mispredict_rate"`
}

func sessionStatsJSON(inf *SessionInfo, rep core.BranchReport, perBranch bool) SessionStatsJSON {
	out := SessionStatsJSON{
		ID: inf.ID, Spec: inf.Spec, Events: inf.Events,
		Branches: rep.Events, StaticBranches: rep.StaticBranches,
		Mispredicts: rep.Mispredicts, Accuracy: rep.Accuracy(),
		PerBranch: perBranch,
		Top:       make([]BranchRankJSON, len(rep.Top)),
	}
	for i, bs := range rep.Top {
		out.Top[i] = BranchRankJSON{
			PC:    fmt.Sprintf("0x%x", bs.PC),
			Count: bs.Count, Taken: bs.Taken,
			Mispredicts: bs.Mispredicts, Filtered: bs.Filtered, Region: bs.Region,
			MispredictRate: bs.MispredictRate(),
		}
	}
	return out
}

// SweepRequest evaluates a grid of predictor specs over one workload
// trace (named workload in the JSON form; an uploaded P64T trace in the
// binary form, with specs and options in query parameters).
type SweepRequest struct {
	Specs     []string `json:"specs"`
	Workload  string   `json:"workload,omitempty"`
	Convert   bool     `json:"convert,omitempty"`
	Limit     uint64   `json:"limit,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
	EvalOptions
}

// SweepRow is one grid point's result.
type SweepRow struct {
	Spec    string      `json:"spec"`
	Metrics MetricsJSON `json:"metrics"`
}

// SweepResponse carries the whole grid, in spec order.
type SweepResponse struct {
	Workload string     `json:"workload"`
	Events   int        `json:"events"`
	Rows     []SweepRow `json:"rows"`
}

// WorkloadJSON describes one built-in workload.
type WorkloadJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// PredictorsResponse lists the registry's predictor kinds.
type PredictorsResponse struct {
	Kinds []string `json:"kinds"`
	Usage string   `json:"usage"`
}

// ErrorBody is the consistent error envelope every non-2xx API response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class and describes it. RequestID is
// the correlation ID the request carried (or was assigned), the same
// value logged by every tier that handled it.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}
