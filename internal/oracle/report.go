package oracle

import (
	"fmt"
	"strings"
)

// Check is one named oracle check outcome.
type Check struct {
	Name string
	Err  error
}

// Report aggregates check outcomes, in the order they were added.
type Report struct {
	Checks []Check
}

// Add records one outcome.
func (r *Report) Add(name string, err error) {
	r.Checks = append(r.Checks, Check{Name: name, Err: err})
}

// Failures returns the checks that diverged.
func (r *Report) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Failures()) == 0 }

// String renders one line per check plus a summary line, in the style of
// go test output: passing checks are listed so "what was covered" is in
// the record, failing checks carry their divergence.
func (r *Report) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		if c.Err != nil {
			fmt.Fprintf(&b, "FAIL %s: %v\n", c.Name, c.Err)
		} else {
			fmt.Fprintf(&b, "ok   %s\n", c.Name)
		}
	}
	fmt.Fprintf(&b, "%d checks, %d divergences\n", len(r.Checks), len(r.Failures()))
	return b.String()
}
