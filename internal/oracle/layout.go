package oracle

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Packed-layout differential checks. internal/bpred stores its 2-bit
// saturating counters 32 to a uint64 word with a branch-free
// transition-table update, while the reference models keep one small
// integer per counter and saturate with explicit branches. The
// randomized stream in CheckSpec trains tables broadly but rarely parks
// a counter on a saturation rail or hammers neighbouring lanes of one
// packed word, which is exactly where a shift, mask, or transition-table
// bug in the packed layout would hide. These streams aim at that
// surface directly; the comparison is still end-to-end through the
// public Predict/Update API, so every kind's index hashing sits between
// the stream and the table, and the check stays valid no matter how the
// storage layout evolves.

// layoutEvent is one scripted (pc, outcome) step.
type layoutEvent struct {
	pc    uint64
	taken bool
}

// layoutStreams builds the adversarial saturation streams, each sized
// around n events. All randomness derives from seed.
func layoutStreams(seed uint64, n int) []struct {
	name   string
	events []layoutEvent
} {
	if n <= 0 {
		n = 1 << 14
	}
	var out []struct {
		name   string
		events []layoutEvent
	}
	add := func(name string, evs []layoutEvent) {
		out = append(out, struct {
			name   string
			events []layoutEvent
		}{name, evs})
	}

	// Every counter of a 64-entry window driven hard onto the taken rail,
	// then hard onto the not-taken rail, repeatedly: extra updates past
	// saturation must be no-ops in both layouts. 64 consecutive PCs span
	// two full packed words for a directly-indexed table.
	const window = 64
	evs := make([]layoutEvent, 0, n)
	for len(evs) < n {
		for rail := 0; rail < 2; rail++ {
			for rep := 0; rep < 6; rep++ {
				for pc := uint64(0); pc < window; pc++ {
					evs = append(evs, layoutEvent{pc, rail == 0})
				}
			}
		}
	}
	add("rails", evs)

	// A single hot branch alternating taken/not-taken: the counter
	// oscillates across the weak middle states, the transitions a wrong
	// transition table gets wrong first.
	evs = make([]layoutEvent, n)
	for i := range evs {
		evs[i] = layoutEvent{pc: 3, taken: i%2 == 0}
	}
	add("flip", evs)

	// Neighbouring lanes pulled in opposite directions in lockstep: pc
	// and pc+1 share a packed word, so a one-lane shift bug bleeds one
	// stream's updates into the other and the predictions split from the
	// reference within a few events.
	evs = make([]layoutEvent, 0, n)
	for base := uint64(0); len(evs) < n; base = (base + 2) % window {
		for rep := 0; rep < 8; rep++ {
			evs = append(evs, layoutEvent{base, true}, layoutEvent{base + 1, false})
		}
	}
	add("lanes", evs)

	// Dense random traffic over a tiny pool: every counter in the window
	// crosses the saturation rails and the middle states in random order,
	// with heavy aliasing for the history-indexed kinds.
	r := rng.New(seed)
	evs = make([]layoutEvent, n)
	for i := range evs {
		evs[i] = layoutEvent{pc: r.Uint64() % 8, taken: r.Bool()}
	}
	add("dense", evs)

	return out
}

// CheckLayout drives spec's registry predictor and its naive reference
// over the adversarial saturation streams and reports the first
// divergence. It is the layout-targeted companion to CheckSpec: same
// end-to-end comparison, streams chosen to stress the packed counter
// storage rather than the index functions.
func CheckLayout(spec sim.Spec, seed uint64, events int) error {
	for _, s := range layoutStreams(seed, events) {
		p, err := spec.New()
		if err != nil {
			return err
		}
		ref, err := ReferenceFor(spec)
		if err != nil {
			return err
		}
		if err := checkScripted(p, ref, s.name, s.events); err != nil {
			return err
		}
	}
	return nil
}

// checkScripted is CheckPredictor over an explicit event script.
func checkScripted(got, want bpred.Predictor, stream string, evs []layoutEvent) error {
	got.Reset()
	want.Reset()
	for i, ev := range evs {
		gp, wp := got.Predict(ev.pc), want.Predict(ev.pc)
		if gp != wp {
			return fmt.Errorf("oracle: %s diverges from %s on %s stream at event %d: pc=%#x predicted taken=%v, reference says %v",
				got.Name(), want.Name(), stream, i, ev.pc, gp, wp)
		}
		got.Update(ev.pc, ev.taken)
		want.Update(ev.pc, ev.taken)
	}
	return nil
}
