package oracle

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/sim"
)

// This file holds the reference models: one naive reimplementation per
// registered predictor kind. They deliberately use different machinery
// from internal/bpred — counters live in maps keyed by modulo-reduced
// indices instead of mask-indexed slices, histories are bool slices read
// back-to-front instead of shifted uint64s — so an off-by-one in a shift,
// mask or saturation boundary diverges instead of cancelling out.

// ReferenceFor returns the naive reference implementation matching spec
// (defaults filled in exactly as the registry fills them). Every kind in
// the sim registry must have a reference; a missing one is an error so
// adding a predictor without extending the oracle fails loudly.
func ReferenceFor(spec sim.Spec) (bpred.Predictor, error) {
	// Parsing the canonical spelling normalizes defaulted parameters the
	// same way Spec.New does before construction.
	n, err := sim.Parse(spec.String())
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case "taken":
		return &refStatic{taken: true}, nil
	case "nottaken":
		return &refStatic{taken: false}, nil
	case "bimodal":
		return newRefBimodal(n.TableBits), nil
	case "gshare":
		return newRefGShare(n.TableBits, n.HistBits), nil
	case "gselect":
		return newRefGSelect(n.TableBits, n.HistBits), nil
	case "gag":
		return newRefGAg(n.HistBits), nil
	case "local":
		return newRefLocal(n.TableBits, n.HistBits, n.PatBits), nil
	case "tournament":
		return newRefTournament(n.TableBits, n.HistBits), nil
	case "agree":
		return newRefAgree(n.TableBits, n.HistBits), nil
	case "perceptron":
		return newRefPerceptron(n.TableBits, n.HistBits), nil
	}
	return nil, fmt.Errorf("oracle: no reference implementation for predictor kind %q", n.Kind)
}

// refTable is a sparse table of 2-bit saturating counters: a map from
// index to counter value, absent entries holding the initial value.
type refTable struct {
	init int
	m    map[uint64]int
}

func newRefTable(init int) refTable { return refTable{init: init, m: map[uint64]int{}} }

func (t refTable) get(i uint64) int {
	if v, ok := t.m[i]; ok {
		return v
	}
	return t.init
}

func (t refTable) taken(i uint64) bool { return t.get(i) >= 2 }

func (t refTable) update(i uint64, taken bool) {
	v := t.get(i)
	if taken && v < 3 {
		v++
	} else if !taken && v > 0 {
		v--
	}
	t.m[i] = v
}

// refHistory records outcome bits in arrival order; recent(0) is the
// newest bit and value(n) assembles the newest n bits with the newest in
// bit position 0 — the same number a shift-left-insert register masked to
// n bits holds.
type refHistory struct{ bits []bool }

func (h *refHistory) observe(b bool) { h.bits = append(h.bits, b) }

func (h *refHistory) recent(i int) bool {
	if i >= len(h.bits) {
		return false
	}
	return h.bits[len(h.bits)-1-i]
}

func (h *refHistory) value(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		if h.recent(i) {
			v |= 1 << i
		}
	}
	return v
}

func pow2(bits int) uint64 { return uint64(1) << bits }

// refStatic is the reference for the static kinds.
type refStatic struct{ taken bool }

func (s *refStatic) Name() string        { return fmt.Sprintf("ref-static-%v", s.taken) }
func (s *refStatic) Predict(uint64) bool { return s.taken }
func (s *refStatic) Update(uint64, bool) {}
func (s *refStatic) Reset()              {}

// refBimodal is the reference bimodal predictor.
type refBimodal struct {
	bits int
	t    refTable
}

func newRefBimodal(bits int) *refBimodal { return &refBimodal{bits: bits, t: newRefTable(1)} }

func (b *refBimodal) Name() string { return fmt.Sprintf("ref-bimodal-%d", b.bits) }

func (b *refBimodal) Predict(pc uint64) bool { return b.t.taken(pc % pow2(b.bits)) }

func (b *refBimodal) Update(pc uint64, taken bool) { b.t.update(pc%pow2(b.bits), taken) }

func (b *refBimodal) Reset() { b.t = newRefTable(1) }

// refGShare is the reference gshare predictor.
type refGShare struct {
	tableBits, histBits int
	t                   refTable
	h                   refHistory
}

func newRefGShare(tableBits, histBits int) *refGShare {
	return &refGShare{tableBits: tableBits, histBits: histBits, t: newRefTable(1)}
}

func (g *refGShare) Name() string { return fmt.Sprintf("ref-gshare-%d.%d", g.tableBits, g.histBits) }

func (g *refGShare) index(pc uint64) uint64 { return (pc ^ g.h.value(g.histBits)) % pow2(g.tableBits) }

func (g *refGShare) Predict(pc uint64) bool { return g.t.taken(g.index(pc)) }

func (g *refGShare) Update(pc uint64, taken bool) {
	g.t.update(g.index(pc), taken)
	g.ObserveBit(taken)
}

func (g *refGShare) ObserveBit(bit bool) { g.h.observe(bit) }

func (g *refGShare) Reset() {
	g.t = newRefTable(1)
	g.h = refHistory{}
}

// refGSelect is the reference gselect predictor.
type refGSelect struct {
	tableBits, histBits int
	t                   refTable
	h                   refHistory
}

func newRefGSelect(tableBits, histBits int) *refGSelect {
	// The real constructor clamps the history contribution to the table
	// size; the reference must model the same constructed shape.
	if histBits > tableBits {
		histBits = tableBits
	}
	return &refGSelect{tableBits: tableBits, histBits: histBits, t: newRefTable(1)}
}

func (g *refGSelect) Name() string { return fmt.Sprintf("ref-gselect-%d.%d", g.tableBits, g.histBits) }

func (g *refGSelect) index(pc uint64) uint64 {
	return ((pc << g.histBits) | g.h.value(g.histBits)) % pow2(g.tableBits)
}

func (g *refGSelect) Predict(pc uint64) bool { return g.t.taken(g.index(pc)) }

func (g *refGSelect) Update(pc uint64, taken bool) {
	g.t.update(g.index(pc), taken)
	g.ObserveBit(taken)
}

func (g *refGSelect) ObserveBit(bit bool) { g.h.observe(bit) }

func (g *refGSelect) Reset() {
	g.t = newRefTable(1)
	g.h = refHistory{}
}

// refGAg is the reference GAg predictor.
type refGAg struct {
	histBits int
	t        refTable
	h        refHistory
}

func newRefGAg(histBits int) *refGAg { return &refGAg{histBits: histBits, t: newRefTable(1)} }

func (g *refGAg) Name() string { return fmt.Sprintf("ref-gag-%d", g.histBits) }

func (g *refGAg) Predict(uint64) bool { return g.t.taken(g.h.value(g.histBits)) }

func (g *refGAg) Update(_ uint64, taken bool) {
	g.t.update(g.h.value(g.histBits), taken)
	g.ObserveBit(taken)
}

func (g *refGAg) ObserveBit(bit bool) { g.h.observe(bit) }

func (g *refGAg) Reset() {
	g.t = newRefTable(1)
	g.h = refHistory{}
}

// refLocal is the reference PAg two-level local predictor.
type refLocal struct {
	entBits, histBits, patBits int
	hists                      map[uint64]*refHistory
	t                          refTable
}

func newRefLocal(entBits, histBits, patBits int) *refLocal {
	return &refLocal{
		entBits: entBits, histBits: histBits, patBits: patBits,
		hists: map[uint64]*refHistory{}, t: newRefTable(1),
	}
}

func (l *refLocal) Name() string {
	return fmt.Sprintf("ref-local-%d.%d.%d", l.entBits, l.histBits, l.patBits)
}

func (l *refLocal) hist(pc uint64) *refHistory {
	i := pc % pow2(l.entBits)
	h, ok := l.hists[i]
	if !ok {
		h = &refHistory{}
		l.hists[i] = h
	}
	return h
}

func (l *refLocal) patIndex(pc uint64) uint64 {
	return l.hist(pc).value(l.histBits) % pow2(l.patBits)
}

func (l *refLocal) Predict(pc uint64) bool { return l.t.taken(l.patIndex(pc)) }

func (l *refLocal) Update(pc uint64, taken bool) {
	// Pattern index is computed against the pre-update history, as the
	// real predictor does.
	l.t.update(l.patIndex(pc), taken)
	l.hist(pc).observe(taken)
}

func (l *refLocal) Reset() {
	l.hists = map[uint64]*refHistory{}
	l.t = newRefTable(1)
}

// refAgree is the reference agree predictor: counters learn agreement
// with a first-outcome bias bit held in a BTB-like bounded store. The
// real implementation keeps a flat 4-way tagged array with per-set
// round-robin cursors; the reference models the same policy as a map of
// per-set entry lists, filled in allocation order and replaced by a
// cycling position — different machinery, same displacement behaviour.
type refAgreeEntry struct {
	pc   uint64
	bias bool
}

type refAgree struct {
	tableBits, histBits int
	ways                int
	t                   refTable
	h                   refHistory
	sets                map[uint64][]refAgreeEntry
	rr                  map[uint64]int
}

func newRefAgree(tableBits, histBits int) *refAgree {
	return &refAgree{tableBits: tableBits, histBits: histBits, ways: 4,
		t: newRefTable(2), sets: map[uint64][]refAgreeEntry{}, rr: map[uint64]int{}}
}

func (a *refAgree) Name() string { return fmt.Sprintf("ref-agree-%d.%d", a.tableBits, a.histBits) }

func (a *refAgree) index(pc uint64) uint64 { return (pc ^ a.h.value(a.histBits)) % pow2(a.tableBits) }

// set returns pc's bias-set number: the bias store holds 2^tableBits
// entries in ways-wide sets.
func (a *refAgree) set(pc uint64) uint64 {
	sets := pow2(a.tableBits) / uint64(a.ways)
	if sets == 0 {
		sets = 1
	}
	return pc % sets
}

// lookupBias returns the stored bias for pc, defaulting to not-taken.
func (a *refAgree) lookupBias(pc uint64) bool {
	for _, e := range a.sets[a.set(pc)] {
		if e.pc == pc {
			return e.bias
		}
	}
	return false
}

// allocBias returns pc's stored bias, allocating (or displacing
// round-robin) an entry with the current outcome on a miss.
func (a *refAgree) allocBias(pc uint64, taken bool) bool {
	s := a.set(pc)
	for _, e := range a.sets[s] {
		if e.pc == pc {
			return e.bias
		}
	}
	if len(a.sets[s]) < a.ways {
		a.sets[s] = append(a.sets[s], refAgreeEntry{pc: pc, bias: taken})
		return taken
	}
	w := a.rr[s]
	a.rr[s] = (w + 1) % a.ways
	a.sets[s][w] = refAgreeEntry{pc: pc, bias: taken}
	return taken
}

func (a *refAgree) Predict(pc uint64) bool {
	return a.lookupBias(pc) == a.t.taken(a.index(pc))
}

func (a *refAgree) Update(pc uint64, taken bool) {
	bias := a.allocBias(pc, taken)
	a.t.update(a.index(pc), taken == bias)
	a.ObserveBit(taken)
}

func (a *refAgree) ObserveBit(bit bool) { a.h.observe(bit) }

func (a *refAgree) Reset() {
	a.t = newRefTable(2)
	a.h = refHistory{}
	a.sets = map[uint64][]refAgreeEntry{}
	a.rr = map[uint64]int{}
}

// refPerceptron is the reference perceptron predictor, with plain-int
// weights clamped to the hardware range.
type refPerceptron struct {
	entBits, histBits int
	weights           map[uint64][]int
	h                 refHistory
	theta             int
}

func newRefPerceptron(entBits, histBits int) *refPerceptron {
	return &refPerceptron{
		entBits: entBits, histBits: histBits,
		weights: map[uint64][]int{},
		theta:   int(1.93*float64(histBits) + 14),
	}
}

func (p *refPerceptron) Name() string {
	return fmt.Sprintf("ref-perceptron-%d.%d", p.entBits, p.histBits)
}

func (p *refPerceptron) row(pc uint64) []int {
	i := pc % pow2(p.entBits)
	w, ok := p.weights[i]
	if !ok {
		w = make([]int, 1+p.histBits)
		p.weights[i] = w
	}
	return w
}

func (p *refPerceptron) output(pc uint64) int {
	w := p.row(pc)
	y := w[0]
	for i := 0; i < p.histBits; i++ {
		if p.h.recent(i) {
			y += w[i+1]
		} else {
			y -= w[i+1]
		}
	}
	return y
}

func (p *refPerceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

func clampStep(w int, up bool) int {
	if up && w < 127 {
		return w + 1
	}
	if !up && w > -127 {
		return w - 1
	}
	return w
}

func (p *refPerceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	mispredicted := (y >= 0) != taken
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if mispredicted || mag <= p.theta {
		w := p.row(pc)
		w[0] = clampStep(w[0], taken)
		for i := 0; i < p.histBits; i++ {
			w[i+1] = clampStep(w[i+1], p.h.recent(i) == taken)
		}
	}
	p.ObserveBit(taken)
}

func (p *refPerceptron) ObserveBit(bit bool) { p.h.observe(bit) }

func (p *refPerceptron) Reset() {
	p.weights = map[uint64][]int{}
	p.h = refHistory{}
}

// refTournament is the reference McFarling tournament predictor,
// composed from the reference global and local components.
type refTournament struct {
	bits    int
	global  *refGShare
	local   *refLocal
	chooser refTable
}

func newRefTournament(bits, histBits int) *refTournament {
	return &refTournament{
		bits:    bits,
		global:  newRefGShare(bits, histBits),
		local:   newRefLocal(bits-2, 10, bits-2),
		chooser: newRefTable(1),
	}
}

func (t *refTournament) Name() string { return fmt.Sprintf("ref-tournament-%d", t.bits) }

func (t *refTournament) chIndex(pc uint64) uint64 { return pc % pow2(t.bits) }

func (t *refTournament) Predict(pc uint64) bool {
	if t.chooser.taken(t.chIndex(pc)) {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

func (t *refTournament) Update(pc uint64, taken bool) {
	g := t.global.Predict(pc)
	l := t.local.Predict(pc)
	if g != l {
		t.chooser.update(t.chIndex(pc), g == taken)
	}
	t.global.Update(pc, taken)
	t.local.Update(pc, taken)
}

func (t *refTournament) ObserveBit(bit bool) { t.global.ObserveBit(bit) }

func (t *refTournament) Reset() {
	t.global.Reset()
	t.local.Reset()
	t.chooser = newRefTable(1)
}

// Compile-time interface checks: every reference is a Predictor, and the
// ones whose real counterpart accepts outside history bits are observers.
var (
	_ bpred.Predictor       = (*refStatic)(nil)
	_ bpred.Predictor       = (*refBimodal)(nil)
	_ bpred.Predictor       = (*refGShare)(nil)
	_ bpred.Predictor       = (*refGSelect)(nil)
	_ bpred.Predictor       = (*refGAg)(nil)
	_ bpred.Predictor       = (*refLocal)(nil)
	_ bpred.Predictor       = (*refAgree)(nil)
	_ bpred.Predictor       = (*refPerceptron)(nil)
	_ bpred.Predictor       = (*refTournament)(nil)
	_ bpred.HistoryObserver = (*refGShare)(nil)
	_ bpred.HistoryObserver = (*refGSelect)(nil)
	_ bpred.HistoryObserver = (*refGAg)(nil)
	_ bpred.HistoryObserver = (*refAgree)(nil)
	_ bpred.HistoryObserver = (*refPerceptron)(nil)
	_ bpred.HistoryObserver = (*refTournament)(nil)
)
