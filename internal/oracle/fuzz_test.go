package oracle

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FuzzPredictorVsReference lets the fuzzer pick the predictor kind, the
// stream seed and the stream length, and requires the registry predictor
// and its naive reference to agree on every prediction. The kinds run at
// their default (registry-normalized) parameters so a fuzz iteration can
// never allocate a pathological table.
func FuzzPredictorVsReference(f *testing.F) {
	kinds := sim.Kinds()
	for i := range kinds {
		f.Add(uint64(i)+1, uint8(i), uint16(512))
	}
	f.Fuzz(func(t *testing.T, seed uint64, kindIdx uint8, events uint16) {
		kind := kinds[int(kindIdx)%len(kinds)]
		s := Stream{Seed: seed, Events: int(events%2048) + 16}
		if err := CheckSpec(sim.MustParse(kind), s); err != nil {
			t.Fatalf("kind %s, seed %d: %v", kind, seed, err)
		}
	})
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the trace deserializer.
// Whatever it accepts must survive a serialize→deserialize round trip
// unchanged; everything else must fail with an error, never a panic or a
// silently short trace.
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with a real serialized trace so the fuzzer starts inside the
	// valid format, plus the degenerate prefixes.
	p, _, err := ifconv.Convert(workload.ByNameMust("scan").Build(), ifconv.Config{})
	if err != nil {
		f.Fatal(err)
	}
	tr, err := trace.Collect(p, 3_000_000)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte("P64T"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := trace.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := trace.ReadTrace(&out)
		if err != nil {
			t.Fatalf("serialized form of accepted trace rejected: %v", err)
		}
		if !reflect.DeepEqual(got, back) {
			t.Fatalf("round trip changed the trace:\n got %+v\nback %+v", got, back)
		}
	})
}
