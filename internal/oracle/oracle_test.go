package oracle

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// testStream is the stream most differential tests use: long enough to
// saturate small tables and exercise every branch-behaviour mode.
var testStream = Stream{Seed: 7, Events: 6000}

// TestCheckSpecAllKinds runs every registered kind, at its default
// parameters and at a spread of explicit sizes, against its naive
// reference model.
func TestCheckSpecAllKinds(t *testing.T) {
	specs := make([]string, 0, len(sim.Kinds()))
	specs = append(specs, sim.Kinds()...)
	specs = append(specs,
		"bimodal:6",
		"gshare:10:10",
		"gshare:14:4",
		"gselect:12:5",
		"gselect:8:12", // histBits clamped to tableBits by the constructor
		"gag:5",
		"local:6:8:9",
		"tournament:9",
		"agree:8:10",
		"perceptron:7:17",
	)
	for _, s := range specs {
		s := s
		t.Run(s, func(t *testing.T) {
			if err := CheckSpec(sim.MustParse(s), testStream); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// brokenGShare is a deliberately wrong gshare: its index function has an
// off-by-one in the history mask, folding one fewer history bit than
// configured. (Note a constant offset added after the fold would be a
// bijective remap of the table and behaviourally invisible — the bug has
// to change the aliasing structure to be a bug at all.) Everything else —
// counters, history handling, interface shape — matches the real one.
type brokenGShare struct {
	table []uint8
	hist  uint64
	hbits int
}

func newBrokenGShare(tableBits, histBits int) *brokenGShare {
	b := &brokenGShare{table: make([]uint8, 1<<tableBits), hbits: histBits}
	b.Reset()
	return b
}

func (b *brokenGShare) Name() string { return "broken-gshare" }

func (b *brokenGShare) index(pc uint64) uint64 {
	mask := uint64(1)<<(b.hbits-1) - 1 // off by one: drops the oldest history bit
	return (pc ^ (b.hist & mask)) & uint64(len(b.table)-1)
}

func (b *brokenGShare) Predict(pc uint64) bool { return b.table[b.index(pc)] >= 2 }

func (b *brokenGShare) Update(pc uint64, taken bool) {
	i := b.index(pc)
	if taken && b.table[i] < 3 {
		b.table[i]++
	} else if !taken && b.table[i] > 0 {
		b.table[i]--
	}
	b.ObserveBit(taken)
}

func (b *brokenGShare) ObserveBit(bit bool) {
	b.hist = b.hist<<1 | boolBit(bit)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (b *brokenGShare) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.hist = 0
}

// TestCheckPredictorCatchesIndexOffByOne seeds a one-character index bug
// into a scratch gshare and requires the differential check to find it.
// This is the sensitivity proof for the whole oracle: if this bug slipped
// through, every "ok" from CheckPredictor would be meaningless.
func TestCheckPredictorCatchesIndexOffByOne(t *testing.T) {
	ref, err := ReferenceFor(sim.For("gshare", 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	err = CheckPredictor(newBrokenGShare(10, 6), ref, testStream)
	if err == nil {
		t.Fatal("off-by-one gshare index not caught")
	}
	if !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// TestCheckPredictorRejectsObserverMismatch: a predictor with an open
// history checked against one without is a harness bug, not a divergence,
// and must be reported as such.
func TestCheckPredictorRejectsObserverMismatch(t *testing.T) {
	static, err := sim.MustParse("taken").New()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceFor(sim.For("gshare", 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	err = CheckPredictor(static, ref, testStream)
	if err == nil || !strings.Contains(err.Error(), "HistoryObserver") {
		t.Fatalf("observer mismatch not reported, got: %v", err)
	}
}

func TestReferenceForUnknownKind(t *testing.T) {
	if _, err := ReferenceFor(sim.Spec{Kind: "neural-oracle"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// stickyGShare forgets to clear its history register on Reset — the
// exact class of bug CheckResetReplay exists to catch.
type stickyGShare struct{ brokenGShare }

func (s *stickyGShare) Name() string { return "sticky-gshare" }

func (s *stickyGShare) index(pc uint64) uint64 {
	mask := uint64(1)<<s.hbits - 1
	return (pc ^ (s.hist & mask)) & uint64(len(s.table)-1)
}

func (s *stickyGShare) Predict(pc uint64) bool { return s.table[s.index(pc)] >= 2 }

func (s *stickyGShare) Update(pc uint64, taken bool) {
	i := s.index(pc)
	if taken && s.table[i] < 3 {
		s.table[i]++
	} else if !taken && s.table[i] > 0 {
		s.table[i]--
	}
	s.ObserveBit(taken)
}

func (s *stickyGShare) Reset() {
	for i := range s.table {
		s.table[i] = 1
	}
	// Bug under test: s.hist is left warm.
}

func TestCheckResetReplay(t *testing.T) {
	for _, kind := range sim.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			p, err := sim.MustParse(kind).New()
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckResetReplay(p, testStream); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("catches-warm-history", func(t *testing.T) {
		sticky := &stickyGShare{}
		sticky.table = make([]uint8, 1<<10)
		sticky.hbits = 8
		if err := CheckResetReplay(sticky, testStream); err == nil {
			t.Fatal("warm history after Reset not caught")
		}
	})
}

func TestCheckInterleaveInvariance(t *testing.T) {
	for _, kind := range []string{"taken", "nottaken"} {
		p, err := sim.MustParse(kind).New()
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInterleaveInvariance(p, testStream); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	// Sanity: a trainable predictor must NOT satisfy the property —
	// if it did, the check would be vacuous.
	b, err := sim.MustParse("bimodal").New()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInterleaveInvariance(b, testStream); err == nil {
		t.Error("bimodal unexpectedly invariant under interleaving; check is vacuous")
	}
}

func TestCheckTableDoubling(t *testing.T) {
	for _, s := range []string{"bimodal", "bimodal:8", "gshare", "gshare:12:6", "gselect:12:5"} {
		s := s
		t.Run(s, func(t *testing.T) {
			if err := CheckTableDoubling(sim.MustParse(s), testStream); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("rejects-unsupported", func(t *testing.T) {
		if err := CheckTableDoubling(sim.MustParse("perceptron"), testStream); err == nil {
			t.Fatal("unsupported kind accepted")
		}
	})
	t.Run("rejects-wide-history-gshare", func(t *testing.T) {
		if err := CheckTableDoubling(sim.For("gshare", 6, 10), testStream); err == nil {
			t.Fatal("gshare with hist > table bits accepted")
		}
	})
}

func TestReportRendering(t *testing.T) {
	var r Report
	r.Add("alpha", nil)
	if !r.OK() {
		t.Fatal("clean report not OK")
	}
	r.Add("beta", errIntentional)
	if r.OK() || len(r.Failures()) != 1 {
		t.Fatalf("failure not tracked: %+v", r)
	}
	out := r.String()
	for _, want := range []string{"ok   alpha", "FAIL beta", "2 checks, 1 divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

var errIntentional = errFixed("intentional")

type errFixed string

func (e errFixed) Error() string { return string(e) }
