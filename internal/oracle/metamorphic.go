package oracle

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/sim"
)

// This file holds the metamorphic checks: properties relating two runs of
// the same implementation, needing no reference model at all.

// replayPredictions resets p and replays the stream, returning the
// prediction made before each update. Outside history bits are injected
// at the same deterministic points on every call with the same Stream.
func replayPredictions(p bpred.Predictor, s Stream) []bool {
	s = s.withDefaults()
	obs, isObs := p.(bpred.HistoryObserver)
	p.Reset()
	g := newStreamGen(s)
	out := make([]bool, 0, s.Events)
	for i := 0; i < s.Events; i++ {
		pc, taken := g.next()
		out = append(out, p.Predict(pc))
		p.Update(pc, taken)
		if isObs && g.r.Chance(observeChance) {
			obs.ObserveBit(g.r.Bool())
		}
	}
	return out
}

// CheckResetReplay trains p over the stream, Resets it, and replays the
// identical stream: the two prediction sequences must match exactly.
// Any state Reset forgets to clear (a stale history bit, a warm table, a
// leftover bias entry) shows up as a divergence in the second pass.
func CheckResetReplay(p bpred.Predictor, s Stream) error {
	first := replayPredictions(p, s)
	second := replayPredictions(p, s)
	for i := range first {
		if first[i] != second[i] {
			return fmt.Errorf("oracle: %s predicts differently after Reset at event %d: first run %v, replay %v",
				p.Name(), i, first[i], second[i])
		}
	}
	return nil
}

// CheckInterleaveInvariance checks that p's predictions on a stream are
// unchanged when an independent second stream is interleaved between its
// events. Only predictors with no trainable state satisfy this — it is
// the Static sanity property: traffic from elsewhere can never change a
// static prediction.
func CheckInterleaveInvariance(p bpred.Predictor, s Stream) error {
	s = s.withDefaults()
	alone := replayPredictions(p, s)

	p.Reset()
	ga := newStreamGen(s)
	other := s
	other.Seed = s.Seed + 0x9e3779b9
	gb := newStreamGen(other)
	for i := 0; i < s.Events; i++ {
		pcA, takenA := ga.next()
		if got := p.Predict(pcA); got != alone[i] {
			return fmt.Errorf("oracle: %s changed its prediction under interleaving at event %d: alone %v, interleaved %v",
				p.Name(), i, alone[i], got)
		}
		p.Update(pcA, takenA)
		pcB, takenB := gb.next()
		p.Predict(pcB)
		p.Update(pcB, takenB)
	}
	return nil
}

// CheckTableDoubling builds spec and the same spec with one more table
// bit, and drives both over a stream confined to PCs that index
// identically in either table: behaviour must be identical, because every
// touched entry exists at the same index in both. It supports the kinds
// whose index function makes the confinement expressible (bimodal,
// gshare, gselect).
func CheckTableDoubling(spec sim.Spec, s Stream) error {
	n, err := sim.Parse(spec.String())
	if err != nil {
		return err
	}
	// pcBits is the largest PC width for which small-table and
	// doubled-table indices provably coincide.
	var pcBits int
	switch n.Kind {
	case "bimodal":
		pcBits = n.TableBits
	case "gshare":
		// index = (pc ^ hist) mod table; both operands must stay below
		// the smaller table size.
		if n.HistBits > n.TableBits {
			return fmt.Errorf("oracle: table doubling for gshare needs hist <= table bits, got %s", n)
		}
		pcBits = n.TableBits
	case "gselect":
		// index = (pc << hist | hist) mod table.
		pcBits = n.TableBits - n.HistBits
	default:
		return fmt.Errorf("oracle: table doubling unsupported for kind %q", n.Kind)
	}
	if pcBits < 1 {
		return fmt.Errorf("oracle: spec %s leaves no PC bits for the doubling check", n)
	}

	small, err := n.New()
	if err != nil {
		return err
	}
	big := n
	big.TableBits++
	bigP, err := big.New()
	if err != nil {
		return err
	}

	s = s.withDefaults()
	s.PCBits = pcBits
	g := newStreamGen(s)
	smallObs, _ := small.(bpred.HistoryObserver)
	bigObs, _ := bigP.(bpred.HistoryObserver)
	for i := 0; i < s.Events; i++ {
		pc, taken := g.next()
		sp, bp := small.Predict(pc), bigP.Predict(pc)
		if sp != bp {
			return fmt.Errorf("oracle: %s and %s diverge at event %d: pc=%#x small=%v doubled=%v",
				small.Name(), bigP.Name(), i, pc, sp, bp)
		}
		small.Update(pc, taken)
		bigP.Update(pc, taken)
		if smallObs != nil && g.r.Chance(observeChance) {
			bit := g.r.Bool()
			smallObs.ObserveBit(bit)
			bigObs.ObserveBit(bit)
		}
	}
	return nil
}
