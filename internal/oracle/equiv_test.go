package oracle

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ifconv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// equivCase builds the standard equivalence-test case: an if-converted
// workload (so predicate-defining events reach the SFPF and PGU paths)
// under a mid-sized gshare with every evaluation feature switched on.
func equivCase(t *testing.T, name string, cfg core.EvalConfig) Case {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := ifconv.Convert(w.Build(), ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return Case{Name: name, Prog: cp, Limit: 3_000_000, Spec: sim.For("gshare", 11, 7), Cfg: cfg}
}

func fullCfg() core.EvalConfig {
	return core.EvalConfig{
		UseSFPF: true, ResolveDelay: core.DefaultResolveDelay,
		PGU: core.PGUAll, PGUDelay: core.DefaultPGUDelay,
		PerBranch: true,
	}
}

func TestReplayEquivalence(t *testing.T) {
	c := equivCase(t, "scan", fullCfg())
	if err := CheckReplayEquivalence(c); err != nil {
		t.Fatal(err)
	}
}

func TestCollectStream(t *testing.T) {
	c := equivCase(t, "scan", fullCfg())
	if err := CheckCollectStream(c.Prog, c.Limit); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := equivCase(t, "bsearch", fullCfg())
	if err := CheckSerializeRoundTrip(c); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluatorMatchesReference sweeps the evaluation-config space —
// filter on/off and training, PGU selection modes, per-branch stats —
// against the naive reference evaluator.
func TestEvaluatorMatchesReference(t *testing.T) {
	configs := []core.EvalConfig{
		{},
		{UseSFPF: true, ResolveDelay: core.DefaultResolveDelay},
		{UseSFPF: true, ResolveDelay: core.DefaultResolveDelay, FilterTrue: true},
		{UseSFPF: true, ResolveDelay: core.DefaultResolveDelay, TrainFiltered: true},
		{UseSFPF: true, ResolveDelay: 1, FilterTrue: true, TrainFiltered: true},
		{PGU: core.PGUAll, PGUDelay: core.DefaultPGUDelay},
		{PGU: core.PGUBranchGuards, PGUDelay: 1},
		{PGU: core.PGURegionGuards, PGUDelay: core.DefaultPGUDelay},
		fullCfg(),
	}
	for i, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg-%d", i), func(t *testing.T) {
			c := equivCase(t, "collatz", cfg)
			if err := CheckEvaluator(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchEquivalenceAllKinds replays every predictor spec in the
// registry through the generic per-event Feed loop and the devirtualized
// batch fast path and requires bit-identical Metrics — the in-tree form
// of the cmd/oracle fastpath matrix.
func TestBatchEquivalenceAllKinds(t *testing.T) {
	for _, kind := range sim.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			c := equivCase(t, "collatz", fullCfg())
			c.Spec = sim.MustParse(kind)
			if err := CheckBatchEquivalence(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSweepParallel(t *testing.T) {
	cases := []Case{
		equivCase(t, "scan", fullCfg()),
		equivCase(t, "bsearch", fullCfg()),
		equivCase(t, "sieve", core.EvalConfig{PerBranch: true}),
	}
	if err := CheckSweepParallel(context.Background(), cases, 4); err != nil {
		t.Fatal(err)
	}
}
