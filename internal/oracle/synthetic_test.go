package oracle

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// synCase resolves a synthetic charz point through the workload
// registry — the same by-name path sweeps, the harness, and the serving
// daemon use — so these checks double as coverage of that wiring.
func synCase(t *testing.T, name string, spec sim.Spec) Case {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Case{Name: name, Prog: w.Build(), Limit: 3_000_000, Spec: spec, Cfg: fullCfg()}
}

// TestSyntheticEquivalence runs the differential evaluators over
// generated traces: the synthetic families stress predictors with
// statistics the hand-written workloads don't reach (pure noise, exact
// periodicity, long-lag copies), and every evaluation path must still
// agree on them.
func TestSyntheticEquivalence(t *testing.T) {
	points := []struct {
		name string
		spec sim.Spec
	}{
		{"syn:bias:p=0.97:n=256", sim.For("gshare", 11, 7)},
		{"syn:periodic:pat=11010010:n=256", sim.For("local", 6, 8, 10)},
		{"syn:lag:k=6:eps=0.02:n=256", sim.For("perceptron", 6, 16)},
		{"syn:xcorr:eps=0.02:n=256", sim.For("tournament", 10, 8)},
	}
	for _, p := range points {
		p := p
		t.Run(p.name, func(t *testing.T) {
			c := synCase(t, p.name, p.spec)
			if err := CheckReplayEquivalence(c); err != nil {
				t.Error(err)
			}
			if err := CheckSerializeRoundTrip(c); err != nil {
				t.Error(err)
			}
			if err := CheckBatchEquivalence(c); err != nil {
				t.Error(err)
			}
			if err := CheckCollectStream(c.Prog, c.Limit); err != nil {
				t.Error(err)
			}
		})
	}
}
