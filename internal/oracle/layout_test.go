package oracle

import (
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/sim"
)

// TestCheckLayoutAllKinds runs the adversarial saturation streams for
// every registry kind against its reference model.
func TestCheckLayoutAllKinds(t *testing.T) {
	for _, kind := range sim.Kinds() {
		t.Run(kind, func(t *testing.T) {
			if err := CheckLayout(sim.MustParse(kind), 1, 4096); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// brokenLaneBimodal is a bimodal predictor with a deliberate one-lane
// packing bug: updates land on the neighbouring counter. The layout
// streams must catch it even though broad randomized traffic often
// trains neighbours similarly enough to slip through short runs.
type brokenLaneBimodal struct {
	b *bpred.Bimodal
}

func (p *brokenLaneBimodal) Name() string             { return "broken-lane" }
func (p *brokenLaneBimodal) Reset()                   { p.b.Reset() }
func (p *brokenLaneBimodal) Predict(pc uint64) bool   { return p.b.Predict(pc) }
func (p *brokenLaneBimodal) Update(pc uint64, t bool) { p.b.Update(pc^1, t) }

// TestCheckLayoutCatchesLaneBug checks the streams have teeth: the
// lane-neighbour stream pulls adjacent counters in opposite directions,
// so an off-by-one-lane update diverges from the reference.
func TestCheckLayoutCatchesLaneBug(t *testing.T) {
	spec := sim.For("bimodal", 12)
	ref, err := ReferenceFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := &brokenLaneBimodal{b: bpred.NewBimodal(12)}
	var failed error
	for _, s := range layoutStreams(1, 4096) {
		ref.Reset()
		if err := checkScripted(got, ref, s.name, s.events); err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		t.Fatal("one-lane update bug not detected by any layout stream")
	}
	if !strings.Contains(failed.Error(), "diverges") {
		t.Fatalf("unexpected error shape: %v", failed)
	}
}
