package oracle

import (
	"testing"

	"repro/internal/sim"
)

func TestSnapshotResume(t *testing.T) {
	c := equivCase(t, "scan", fullCfg())
	if err := CheckSnapshotResume(c); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotResumeAllKinds runs the durability oracle for every
// registered predictor kind, so a kind whose state codec misses a field
// fails here and not first in production restore.
func TestSnapshotResumeAllKinds(t *testing.T) {
	base := equivCase(t, "filter", fullCfg())
	base.Limit = 300_000
	for _, kind := range sim.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			c := base
			c.Name = base.Name + "-" + kind
			c.Spec = sim.MustParse(kind)
			if err := CheckSnapshotResume(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
