package oracle

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/sim"
)

// observeChance is the probability of injecting an out-of-band history
// bit (the predicate-global-update path) between branch events during a
// differential run, when the predictor under test has an open history.
const observeChance = 0.1

// CheckPredictor drives got and want over the same randomized stream and
// returns an error describing the first divergence, or nil if every
// prediction matched. Both predictors are Reset first. When both expose
// an open global history, predicate-style outside bits are injected into
// the two histories in lockstep, so the ObserveBit path is differentially
// tested too.
func CheckPredictor(got, want bpred.Predictor, s Stream) error {
	s = s.withDefaults()
	gObs, gOK := got.(bpred.HistoryObserver)
	wObs, wOK := want.(bpred.HistoryObserver)
	if gOK != wOK {
		return fmt.Errorf("oracle: %s and %s disagree on implementing HistoryObserver (%v vs %v)",
			got.Name(), want.Name(), gOK, wOK)
	}
	got.Reset()
	want.Reset()
	g := newStreamGen(s)
	for i := 0; i < s.Events; i++ {
		pc, taken := g.next()
		gp, wp := got.Predict(pc), want.Predict(pc)
		if gp != wp {
			return fmt.Errorf("oracle: %s diverges from %s at event %d: pc=%#x predicted taken=%v, reference says %v",
				got.Name(), want.Name(), i, pc, gp, wp)
		}
		got.Update(pc, taken)
		want.Update(pc, taken)
		if gOK && g.r.Chance(observeChance) {
			bit := g.r.Bool()
			gObs.ObserveBit(bit)
			wObs.ObserveBit(bit)
		}
	}
	return nil
}

// CheckSpec builds the registry predictor for spec and its reference
// model and checks them against each other.
func CheckSpec(spec sim.Spec, s Stream) error {
	p, err := spec.New()
	if err != nil {
		return err
	}
	ref, err := ReferenceFor(spec)
	if err != nil {
		return err
	}
	return CheckPredictor(p, ref, s)
}
