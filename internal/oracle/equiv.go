package oracle

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Case is one program × predictor-configuration evaluation used by the
// equivalence checks. Cfg.Predictor is ignored: each side of a check
// constructs a fresh predictor from Spec, so the two paths can never
// share mutable state and agree by accident.
type Case struct {
	Name  string
	Prog  *prog.Program
	Limit uint64
	Spec  sim.Spec
	Cfg   core.EvalConfig
}

// config returns the evaluation config with a freshly built predictor.
func (c Case) config() (core.EvalConfig, error) {
	p, err := c.Spec.New()
	if err != nil {
		return core.EvalConfig{}, err
	}
	cfg := c.Cfg
	cfg.Predictor = p
	return cfg, nil
}

// metricsDiff renders a field-by-field description of how two Metrics
// differ, so a divergence report names the counter instead of dumping
// two structs to eyeball.
func metricsDiff(a, b core.Metrics) string {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	t := av.Type()
	var out []string
	for i := 0; i < t.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			out = append(out, fmt.Sprintf("%s: %v vs %v", t.Field(i).Name, av.Field(i), bv.Field(i)))
		}
	}
	if len(out) == 0 {
		return "metrics equal"
	}
	return fmt.Sprint(out)
}

// CheckReplayEquivalence evaluates the case over the materialized trace
// (Collect + slice replay) and over the live emulator stream
// (trace.Stream + EvaluateStream). The two metrics must be bit-identical:
// this is the slice-vs-stream equivalence every caller of either path
// relies on.
func CheckReplayEquivalence(c Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
	}
	cfgSlice, err := c.config()
	if err != nil {
		return err
	}
	fromSlice := core.Evaluate(tr, cfgSlice)
	cfgStream, err := c.config()
	if err != nil {
		return err
	}
	fromStream, err := core.EvaluateStream(trace.Stream(c.Prog, c.Limit).Replay(), cfgStream)
	if err != nil {
		return fmt.Errorf("oracle: %s: stream evaluation: %w", c.Name, err)
	}
	if !reflect.DeepEqual(fromSlice, fromStream) {
		return fmt.Errorf("oracle: %s: slice and stream replay diverge: %s", c.Name, metricsDiff(fromSlice, fromStream))
	}
	return nil
}

// CheckCollectStream verifies that trace.Collect and direct consumption
// of trace.Stream produce the identical event sequence and run counts
// for the program.
func CheckCollectStream(p *prog.Program, limit uint64) error {
	tr, err := trace.Collect(p, limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", p.Name, err)
	}
	r := trace.Stream(p, limit).Replay()
	var ev trace.Event
	i := 0
	for r.Next(&ev) {
		if i >= len(tr.Events) {
			return fmt.Errorf("oracle: %s: stream produced extra event %d: %+v", p.Name, i, ev)
		}
		if ev != tr.Events[i] {
			return fmt.Errorf("oracle: %s: event %d differs: stream %+v, collect %+v", p.Name, i, ev, tr.Events[i])
		}
		i++
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("oracle: %s: stream: %w", p.Name, err)
	}
	if i != len(tr.Events) {
		return fmt.Errorf("oracle: %s: stream stopped after %d of %d events", p.Name, i, len(tr.Events))
	}
	if got, want := r.Counts(), tr.Counts(); got != want {
		return fmt.Errorf("oracle: %s: counts differ: stream %+v, collect %+v", p.Name, got, want)
	}
	return nil
}

// CheckSerializeRoundTrip collects the case's trace, serializes it,
// deserializes it, and requires (a) the deserialized trace to be
// structurally identical and (b) an evaluation replayed over it to
// produce bit-identical metrics.
func CheckSerializeRoundTrip(c Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		return fmt.Errorf("oracle: %s: serialize: %w", c.Name, err)
	}
	back, err := trace.ReadTrace(&buf)
	if err != nil {
		return fmt.Errorf("oracle: %s: deserialize: %w", c.Name, err)
	}
	if !reflect.DeepEqual(tr, back) {
		return fmt.Errorf("oracle: %s: trace did not survive the serialize round trip", c.Name)
	}
	cfgA, err := c.config()
	if err != nil {
		return err
	}
	cfgB, err := c.config()
	if err != nil {
		return err
	}
	before := core.Evaluate(tr, cfgA)
	after := core.Evaluate(back, cfgB)
	if !reflect.DeepEqual(before, after) {
		return fmt.Errorf("oracle: %s: replay after round trip diverges: %s", c.Name, metricsDiff(before, after))
	}
	return nil
}

// CheckBatchEquivalence replays the case's trace through the generic
// per-event Feed loop and through the specialized batch fast path
// (FeedBatch), in uneven batch sizes chosen to straddle the fast path's
// internal boundaries, and requires bit-identical Metrics. This is the
// devirtualized-fast-path-vs-interface-path equivalence everything that
// calls EvaluateStream now silently relies on.
func CheckBatchEquivalence(c Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
	}
	cfgGeneric, err := c.config()
	if err != nil {
		return err
	}
	generic := core.NewEvaluator(cfgGeneric)
	for i := range tr.Events {
		generic.Feed(&tr.Events[i])
	}
	generic.AddInsts(tr.Insts)

	// Uneven batch sizes: a 1-event batch, a huge batch, and odd sizes
	// that leave stragglers, so batch-boundary state carry is exercised.
	for _, size := range []int{1, 7, 1024, 1 << 20} {
		cfgBatch, err := c.config()
		if err != nil {
			return err
		}
		batch := core.NewEvaluator(cfgBatch)
		for i := 0; i < len(tr.Events); i += size {
			end := i + size
			if end > len(tr.Events) {
				end = len(tr.Events)
			}
			batch.FeedBatch(tr.Events[i:end])
		}
		batch.AddInsts(tr.Insts)
		if got, want := batch.Metrics(), generic.Metrics(); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("oracle: %s: batch fast path (size %d) diverges from generic Feed: %s",
				c.Name, size, metricsDiff(got, want))
		}
	}
	return nil
}

// CheckSweepParallel runs the cases' evaluations twice — in a plain
// serial loop and fanned out over sim.Sweep's worker pool — and requires
// the result slices to be identical, which is the determinism guarantee
// (results in job order, independent of scheduling) plus the safety of
// sharing one collected trace across concurrent replay cursors.
func CheckSweepParallel(ctx context.Context, cases []Case, workers int) error {
	traces := make([]*trace.Trace, len(cases))
	for i, c := range cases {
		tr, err := trace.Collect(c.Prog, c.Limit)
		if err != nil {
			return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
		}
		traces[i] = tr
	}
	eval := func(i int) (core.Metrics, error) {
		cfg, err := cases[i].config()
		if err != nil {
			return core.Metrics{}, err
		}
		return core.Evaluate(traces[i], cfg), nil
	}
	serial := make([]core.Metrics, len(cases))
	for i := range cases {
		m, err := eval(i)
		if err != nil {
			return err
		}
		serial[i] = m
	}
	idx := make([]int, len(cases))
	for i := range idx {
		idx[i] = i
	}
	parallel, err := sim.Map(ctx, idx, workers, func(_ context.Context, i int) (core.Metrics, error) {
		return eval(i)
	})
	if err != nil {
		return fmt.Errorf("oracle: parallel sweep: %w", err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			return fmt.Errorf("oracle: %s: serial and parallel sweep diverge: %s",
				cases[i].Name, metricsDiff(serial[i], parallel[i]))
		}
	}
	return nil
}
