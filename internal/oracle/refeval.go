package oracle

import (
	"fmt"
	"reflect"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// referenceEvaluate is a deliberately naive reimplementation of the
// trace-driven evaluation loop in core.EvaluateStream: the squash false
// path filter decision, the predicate-global-update bit insertion with
// its delay, and all the metric accounting, written from the definitions
// rather than from the production code. It indexes the event slice
// directly and keeps the delayed history bits in an explicit queue it
// rescans from the front, trading speed for obviousness.
func referenceEvaluate(tr *trace.Trace, cfg core.EvalConfig) core.Metrics {
	p := cfg.Predictor
	p.Reset()
	obs, hasHistory := p.(bpred.HistoryObserver)
	inserting := hasHistory && cfg.PGU != core.PGUOff

	var m core.Metrics
	type delayed struct {
		applyAt uint64
		bit     bool
	}
	var queue []delayed

	for i := range tr.Events {
		ev := &tr.Events[i]

		// Deliver every delayed predicate bit that has reached the
		// history by this event's fetch point, oldest first.
		for len(queue) > 0 && queue[0].applyAt <= ev.Step {
			obs.ObserveBit(queue[0].bit)
			m.InsertedBits++
			queue = queue[1:]
		}

		if ev.Kind == trace.KindPredDef {
			m.PredDefs++
			if inserting && cfg.PGU.Selects(ev) && ev.Executed {
				queue = append(queue, delayed{applyAt: ev.Step + cfg.PGUDelay, bit: ev.Value})
			}
			continue
		}

		// Branch event.
		m.Branches++
		if ev.Region {
			m.RegionBranches++
		}
		var bs *core.BranchStats
		if cfg.PerBranch {
			if m.ByPC == nil {
				m.ByPC = make(map[uint64]*core.BranchStats)
			}
			bs = m.ByPC[ev.PC]
			if bs == nil {
				bs = &core.BranchStats{PC: ev.PC, Region: ev.Region}
				m.ByPC[ev.PC] = bs
			}
			bs.Count++
			if ev.Taken {
				bs.Taken++
			}
		}

		// The filter may handle the branch: the guard must be a real
		// predicate and resolved early enough to be known at fetch.
		if cfg.UseSFPF && ev.Guard != isa.P0 && ev.GuardDist >= cfg.ResolveDelay {
			filtered := false
			if !ev.GuardVal {
				m.Filtered++
				if ev.Taken {
					m.FilterErrors++
				}
				filtered = true
			} else if cfg.FilterTrue && ev.GuardImpliesTaken {
				m.FilteredTrue++
				if !ev.Taken {
					m.FilterErrors++
				}
				filtered = true
			}
			if filtered {
				if bs != nil {
					bs.Filtered++
				}
				if cfg.TrainFiltered {
					p.Update(ev.PC, ev.Taken)
				}
				continue
			}
		}

		if p.Predict(ev.PC) != ev.Taken {
			m.Mispredicts++
			if ev.Region {
				m.RegionMispredicts++
			}
			if bs != nil {
				bs.Mispredicts++
			}
		}
		p.Update(ev.PC, ev.Taken)
	}
	m.Insts = tr.Insts
	return m
}

// CheckEvaluator collects the case's trace and compares core.Evaluate
// against the naive reference evaluation: the SFPF decisions, PGU
// insertions, and all counters must agree exactly.
func CheckEvaluator(c Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
	}
	cfgGot, err := c.config()
	if err != nil {
		return err
	}
	got := core.Evaluate(tr, cfgGot)
	cfgWant, err := c.config()
	if err != nil {
		return err
	}
	want := referenceEvaluate(tr, cfgWant)
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("oracle: %s: evaluator diverges from reference: %s", c.Name, metricsDiff(got, want))
	}
	return nil
}
