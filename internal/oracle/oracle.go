// Package oracle is the repository's differential-testing and
// invariant-checking subsystem. The simulation engine offers several ways
// to produce the same number — registry-built vs. hand-built predictors,
// slice vs. streaming trace replay, serial vs. parallel sweeps,
// in-memory vs. serialized traces — and every pair is an equivalence the
// rest of the repository silently relies on. This package makes each one
// an executable check:
//
//   - reference models (reference.go): deliberately naive, obviously
//     correct reimplementations of every registered predictor kind, plus
//     a naive reimplementation of the SFPF/PGU evaluation loop. They use
//     maps, bool slices and modulo arithmetic where the real code uses
//     bitmasks and shifts, so a shared bug is unlikely to hide in both.
//   - differential checks (check.go): CheckPredictor drives a predictor
//     and its reference over the same randomized PC/outcome stream and
//     reports the first divergence; CheckEvaluator (refeval.go) does the
//     same for a whole trace evaluation.
//   - cross-implementation equivalence (equiv.go): slice vs. stream
//     replay, Collect vs. Stream event production, serialize round-trips,
//     and serial vs. parallel sweeps must all be bit-identical.
//   - metamorphic properties (metamorphic.go): Reset-then-replay yields
//     identical results, static predictors ignore interleaved traffic,
//     doubling a table never changes behaviour on a stream confined to
//     the smaller index space.
//
// The checks are consumed by this package's tests and fuzz targets and by
// cmd/oracle, the one-command correctness gate CI runs.
package oracle

import (
	"math/bits"

	"repro/internal/rng"
)

// Stream configures the randomized PC/outcome stream the differential
// predictor checks replay. The zero value gets usable defaults from
// withDefaults; all randomness derives from Seed, so every check is
// reproducible.
type Stream struct {
	// Seed seeds the deterministic generator.
	Seed uint64
	// Events is the number of branch events to generate (default 10000).
	Events int
	// PoolBits sizes the static branch pool: 2^PoolBits distinct PCs
	// (default 6). A small hot pool trains tables hard enough that
	// counter-update bugs surface, not just index bugs.
	PoolBits int
	// PCBits bounds the magnitude of PC values: each pool PC is a random
	// value below 2^PCBits (default 30, so PCs exceed every table size
	// and exercise index wrapping). The metamorphic table-doubling check
	// narrows this to the smaller table's index space.
	PCBits int
}

func (s Stream) withDefaults() Stream {
	if s.Events == 0 {
		s.Events = 10000
	}
	if s.PoolBits == 0 {
		s.PoolBits = 6
	}
	if s.PCBits == 0 {
		s.PCBits = 30
	}
	return s
}

// Branch behaviour modes a pool PC can be assigned.
const (
	modeBiased     = iota // taken with a fixed per-branch probability
	modePeriodic          // taken every k-th execution
	modeCorrelated        // taken iff the last three global outcomes have odd parity
	modeRandom            // fair coin
)

// streamGen generates the randomized branch stream: a pool of static PCs,
// each with a behaviour mode, so the stream mixes strongly biased,
// pattern-following, history-correlated and random branches — enough
// texture that every predictor's tables, histories and weights train.
type streamGen struct {
	r      *rng.Source
	pool   []uint64
	mode   []int
	bias   []float64
	period []int
	phase  []int
	recent uint64 // global outcome history, most recent in bit 0
}

func newStreamGen(s Stream) *streamGen {
	s = s.withDefaults()
	g := &streamGen{r: rng.New(s.Seed)}
	n := 1 << s.PoolBits
	g.pool = make([]uint64, n)
	g.mode = make([]int, n)
	g.bias = make([]float64, n)
	g.period = make([]int, n)
	g.phase = make([]int, n)
	for i := 0; i < n; i++ {
		g.pool[i] = g.r.Bits(s.PCBits)
		g.mode[i] = g.r.Intn(4)
		g.bias[i] = []float64{0.05, 0.2, 0.5, 0.8, 0.95}[g.r.Intn(5)]
		g.period[i] = 2 + g.r.Intn(6)
	}
	return g
}

// next returns the next (pc, outcome) pair.
func (g *streamGen) next() (uint64, bool) {
	i := g.r.Intn(len(g.pool))
	var taken bool
	switch g.mode[i] {
	case modeBiased:
		taken = g.r.Chance(g.bias[i])
	case modePeriodic:
		g.phase[i]++
		taken = g.phase[i]%g.period[i] == 0
	case modeCorrelated:
		taken = bits.OnesCount64(g.recent&7)%2 == 1
	default:
		taken = g.r.Bool()
	}
	g.recent <<= 1
	if taken {
		g.recent |= 1
	}
	return g.pool[i], taken
}
