package oracle

import (
	"bytes"
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/snap"
	"repro/internal/trace"
)

// CheckSnapshotResume cuts the case's evaluation at an arbitrary point,
// round-trips the evaluator through the P64S snapshot codec, resumes on
// the restored evaluator, and requires the interrupted run to be
// indistinguishable from an uninterrupted one: bit-identical Metrics and
// a byte-identical final snapshot. This is the durability oracle — if it
// holds at every cut point, a server can die and restore at any batch
// boundary without the client ever observing it.
func CheckSnapshotResume(c Case) error {
	tr, err := trace.Collect(c.Prog, c.Limit)
	if err != nil {
		return fmt.Errorf("oracle: %s: collect: %w", c.Name, err)
	}

	// Uninterrupted reference run.
	refCfg, err := c.config()
	if err != nil {
		return err
	}
	ref := core.NewEvaluator(refCfg)
	for i := range tr.Events {
		ref.Feed(&tr.Events[i])
	}
	ref.AddInsts(tr.Insts)
	meta := snap.Meta{SessionID: "oracle-" + c.Name, Events: uint64(len(tr.Events)), Batches: 1, LastSeq: 1}
	wantBlob, err := snap.Encode(c.Spec, ref, meta)
	if err != nil {
		return fmt.Errorf("oracle: %s: encode reference: %w", c.Name, err)
	}

	// Interrupted run: cut at several points, including the degenerate
	// ones (before any event, after the last).
	for _, num := range []int{0, 1, 2} {
		cut := len(tr.Events) * num / 2
		cutCfg, err := c.config()
		if err != nil {
			return err
		}
		e := core.NewEvaluator(cutCfg)
		for i := 0; i < cut; i++ {
			e.Feed(&tr.Events[i])
		}
		blob, err := snap.Encode(c.Spec, e, snap.Meta{SessionID: "oracle-" + c.Name})
		if err != nil {
			return fmt.Errorf("oracle: %s: encode at cut %d/%d: %w", c.Name, cut, len(tr.Events), err)
		}
		res, err := snap.Decode(blob)
		if err != nil {
			return fmt.Errorf("oracle: %s: decode at cut %d/%d: %w", c.Name, cut, len(tr.Events), err)
		}
		for i := cut; i < len(tr.Events); i++ {
			res.Eval.Feed(&tr.Events[i])
		}
		res.Eval.AddInsts(tr.Insts)
		if got, want := res.Eval.Metrics(), ref.Metrics(); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("oracle: %s: resume at cut %d/%d diverges: %s",
				c.Name, cut, len(tr.Events), metricsDiff(got, want))
		}
		gotBlob, err := snap.Encode(res.Spec, res.Eval, meta)
		if err != nil {
			return fmt.Errorf("oracle: %s: re-encode at cut %d/%d: %w", c.Name, cut, len(tr.Events), err)
		}
		if !bytes.Equal(gotBlob, wantBlob) {
			return fmt.Errorf("oracle: %s: final snapshot after resume at cut %d/%d is not byte-identical to the uninterrupted run",
				c.Name, cut, len(tr.Events))
		}
	}
	return nil
}
