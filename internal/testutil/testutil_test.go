package testutil

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func simple(name string, outVal int64) *prog.Program {
	b := prog.NewBuilder(name)
	b.Movi(1, outVal)
	b.Out(1)
	b.St(0, 100, 1)
	b.Halt(0)
	return b.MustProgram()
}

func TestCheckEquivalentAccepts(t *testing.T) {
	if err := CheckEquivalent(simple("a", 5), simple("b", 5), 100); err != nil {
		t.Fatalf("identical programs rejected: %v", err)
	}
}

func TestCheckEquivalentCatchesOutput(t *testing.T) {
	err := CheckEquivalent(simple("a", 5), simple("b", 6), 100)
	if err == nil {
		t.Fatal("differing programs accepted")
	}
	// Registers differ first (r1), which is fine: any discrepancy must be
	// reported.
	if !strings.Contains(err.Error(), "differ") {
		t.Errorf("error uninformative: %v", err)
	}
}

func TestCheckEquivalentCatchesExitCode(t *testing.T) {
	b := prog.NewBuilder("x")
	b.Halt(2)
	if err := CheckEquivalent(simple("a", 5), b.MustProgram(), 100); err == nil {
		t.Fatal("differing exit codes accepted")
	}
}

func TestCheckEquivalentCatchesMemory(t *testing.T) {
	mk := func(addr int64) *prog.Program {
		b := prog.NewBuilder("m")
		b.Movi(1, 9)
		b.St(0, addr, 1)
		b.Out(1)
		b.Halt(0)
		return b.MustProgram()
	}
	if err := CheckEquivalent(mk(50), mk(51), 100); err == nil {
		t.Fatal("differing memory accepted")
	}
}

func TestCheckEquivalentCatchesOutputLength(t *testing.T) {
	b := prog.NewBuilder("two")
	b.Movi(1, 5)
	b.Out(1)
	b.Out(1)
	b.St(0, 100, 1)
	b.Halt(0)
	if err := CheckEquivalent(simple("a", 5), b.MustProgram(), 100); err == nil {
		t.Fatal("differing output lengths accepted")
	}
}

func TestCheckEquivalentPropagatesRunErrors(t *testing.T) {
	bad := prog.NewBuilder("bad")
	bad.Trap()
	if err := CheckEquivalent(bad.MustProgram(), simple("b", 5), 100); err == nil {
		t.Fatal("trapping program accepted")
	}
}

func TestCheckEquivalentIgnoresPredicates(t *testing.T) {
	// Programs that differ only in predicate state must be equivalent.
	a := prog.NewBuilder("a")
	a.Movi(1, 3)
	a.Out(1)
	a.St(0, 100, 1)
	a.Halt(0)
	b := prog.NewBuilder("b")
	b.Movi(1, 3)
	b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 7, Imm: 1})
	b.Out(1)
	b.St(0, 100, 1)
	b.Halt(0)
	if err := CheckEquivalent(a.MustProgram(), b.MustProgram(), 100); err != nil {
		t.Fatalf("predicate-only difference rejected: %v", err)
	}
}

func TestRunFull(t *testing.T) {
	m, res, err := RunFull(simple("a", 7), 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 7 || res.ExitCode != 0 {
		t.Errorf("r1=%d exit=%d", m.Regs[1], res.ExitCode)
	}
}
