// Package testutil provides cross-package test helpers, chiefly the
// observational-equivalence oracle between an original program and its
// if-converted form.
package testutil

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/prog"
)

// RunFull runs a program to completion and returns the final machine.
func RunFull(p *prog.Program, limit uint64) (*emu.Machine, emu.Result, error) {
	m, err := emu.New(p)
	if err != nil {
		return nil, emu.Result{}, err
	}
	res, err := m.Run(limit)
	return m, res, err
}

// CheckEquivalent verifies that two programs are observationally
// equivalent: same exit code, same output stream, same final general
// registers, and same final memory. Predicate registers are excluded —
// if-conversion legitimately renumbers them.
func CheckEquivalent(a, b *prog.Program, limit uint64) error {
	ma, ra, err := RunFull(a, limit)
	if err != nil {
		return fmt.Errorf("running %s: %w", a.Name, err)
	}
	mb, rb, err := RunFull(b, limit)
	if err != nil {
		return fmt.Errorf("running %s: %w", b.Name, err)
	}
	if ra.ExitCode != rb.ExitCode {
		return fmt.Errorf("exit codes differ: %s=%d %s=%d", a.Name, ra.ExitCode, b.Name, rb.ExitCode)
	}
	if len(ra.Output) != len(rb.Output) {
		return fmt.Errorf("output lengths differ: %s=%d %s=%d", a.Name, len(ra.Output), b.Name, len(rb.Output))
	}
	for i := range ra.Output {
		if ra.Output[i] != rb.Output[i] {
			return fmt.Errorf("output[%d] differs: %s=%d %s=%d", i, a.Name, ra.Output[i], b.Name, rb.Output[i])
		}
	}
	for r := range ma.Regs {
		if ma.Regs[r] != mb.Regs[r] {
			return fmt.Errorf("r%d differs: %s=%d %s=%d", r, a.Name, ma.Regs[r], b.Name, mb.Regs[r])
		}
	}
	sa, sb := ma.MemSnapshot(), mb.MemSnapshot()
	if len(sa) != len(sb) {
		return fmt.Errorf("memory footprints differ: %s=%d %s=%d words", a.Name, len(sa), b.Name, len(sb))
	}
	for addr, v := range sa {
		if sb[addr] != v {
			return fmt.Errorf("mem[%d] differs: %s=%d %s=%d", addr, a.Name, v, b.Name, sb[addr])
		}
	}
	return nil
}
