// Package pipeline implements an in-order, single-issue timing model for
// P64 with a parameterised branch-misprediction penalty, operand
// scoreboarding, nullified-slot costs for predicated instructions, and a
// fetch-stage integration of the paper's mechanisms: the squash false path
// filter consults a predicate scoreboard fed by in-flight defines, and the
// predicate global update mechanism inserts define outcomes into the
// predictor's global history as they resolve.
//
// The model is deliberately first-order: it charges one issue slot per
// fetched instruction (nullified or not), data-dependence stalls from a
// latency table, and a flat flush penalty per direction misprediction.
// Branch targets are assumed perfectly predicted (direction-only study,
// as in the paper).
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Config parameterises one timing run.
type Config struct {
	// Predictor supplies branch directions; it is Reset before the run.
	Predictor bpred.Predictor

	// UseSFPF enables the squash false path filter at fetch.
	UseSFPF bool
	// FilterTrue extends the filter to known-true guards on branches whose
	// guard implies taken.
	FilterTrue bool
	// TrainFiltered lets filtered branches train the predictor.
	TrainFiltered bool

	// PGU selects which resolved predicate defines update global history.
	PGU core.PGUPolicy

	// MispredictPenalty is the flush cost in cycles. Default 10.
	MispredictPenalty uint64
	// PredResolveLatency is the number of cycles after a define issues
	// before its value is visible to the fetch-stage filter and to the
	// history update. Default 5.
	PredResolveLatency uint64
	// IssueWidth is the number of instructions issued per cycle. Default 1.
	// Wider machines amortise nullified slots (cheapening predication)
	// while misprediction penalties stay flat — the axis the paper's
	// trade-off moves along. A taken branch ends its issue group.
	IssueWidth int

	// RASDepth sizes the return-address stack predicting indirect-branch
	// (brr) targets: calls push their return point, indirect branches pop
	// a predicted target, and a wrong target costs MispredictPenalty.
	// Depth 0 makes every executed indirect branch pay the penalty.
	// Default 8. Direct branch targets are assumed decode-resolved
	// (direction-only study, as in the paper).
	RASDepth int
	// NoRAS forces RASDepth 0 (the zero value of RASDepth means
	// "default", so disabling needs an explicit flag).
	NoRAS bool
}

// DefaultConfig returns the machine configuration used by the experiments,
// with the given predictor.
func DefaultConfig(p bpred.Predictor) Config {
	return Config{
		Predictor:          p,
		MispredictPenalty:  10,
		PredResolveLatency: 5,
	}
}

func (c Config) withDefaults() Config {
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 10
	}
	if c.PredResolveLatency == 0 {
		c.PredResolveLatency = 5
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 1
	}
	if c.RASDepth <= 0 {
		c.RASDepth = 8
	}
	if c.NoRAS {
		c.RASDepth = 0
	}
	return c
}

// Stats reports the outcome of a timing run.
type Stats struct {
	Cycles    uint64
	Insts     uint64 // fetched instructions (including nullified)
	Nullified uint64
	Stalls    uint64 // cycles lost to operand dependences

	Branches          uint64 // conditional branches
	Mispredicts       uint64
	RegionBranches    uint64
	RegionMispredicts uint64

	Filtered     uint64
	FilteredTrue uint64
	FilterErrors uint64
	InsertedBits uint64

	IndirectBranches uint64 // executed indirect (brr) branches
	RASMisses        uint64 // indirect branches with a wrong predicted target

	ExitCode int64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// latency returns the execute latency of an instruction in cycles.
func latency(op isa.Op) uint64 {
	switch op {
	case isa.OpLd:
		return 3
	case isa.OpMul:
		return 3
	case isa.OpDiv, isa.OpMod:
		return 12
	default:
		return 1
	}
}

type pendingResolve struct {
	at    uint64 // cycle at which the values become fetch-visible
	preds []isa.PReg
	vals  []bool
	// pgu carries the define outcome bit when the policy selects it.
	pgu    bool
	pguBit bool
}

// Run executes the program on the timing model.
func Run(p *prog.Program, cfg Config, limit uint64) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Predictor == nil {
		return Stats{}, fmt.Errorf("pipeline: no predictor configured")
	}
	cfg.Predictor.Reset()
	m, err := emu.New(p)
	if err != nil {
		return Stats{}, err
	}

	// Static classification mirroring trace.Collect: which predicate
	// registers guard (region) branches, so the PGU policy can select
	// defines the same way a compiler-marked encoding would.
	var branchGuards, regionGuards uint64
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsBranch() && in.QP != isa.P0 {
			branchGuards |= 1 << in.QP
			if in.Region {
				regionGuards |= 1 << in.QP
			}
		}
	}

	var st Stats
	sfpf := core.NewSFPF()
	obs, _ := cfg.Predictor.(bpred.HistoryObserver)

	var regReady [isa.NumRegs]uint64
	var cycle uint64
	slot := 0 // instructions issued in the current cycle
	width := cfg.IssueWidth
	var ras []int // return-address stack (bounded by cfg.RASDepth)
	var pending []pendingResolve

	for !m.Halted {
		if limit > 0 && m.Steps >= limit {
			return st, fmt.Errorf("pipeline: %w (%d steps in %s)", emu.ErrLimit, m.Steps, p.Name)
		}

		// Apply resolves that became visible by the current fetch cycle.
		for len(pending) > 0 && pending[0].at <= cycle {
			pr := pending[0]
			pending = pending[1:]
			for i := range pr.preds {
				sfpf.Resolve(pr.preds[i], pr.vals[i])
			}
			if pr.pgu && obs != nil {
				obs.ObserveBit(pr.pguBit)
				st.InsertedBits++
			}
		}

		idx := m.PC
		in := &p.Insts[idx]

		// Fetch-stage bookkeeping before functional execution.
		isCondBranch := (in.Op == isa.OpBr || in.Op == isa.OpBrl) && in.QP != isa.P0 ||
			in.Op == isa.OpCloop
		guardImpliesTaken := in.Op != isa.OpCloop
		var predicted bool
		var filtered, filteredTrue, usePredictor bool
		if isCondBranch {
			st.Branches++
			if in.Region {
				st.RegionBranches++
			}
			if known, val := sfpf.Lookup(in.QP); cfg.UseSFPF && in.QP != isa.P0 && known {
				switch {
				case !val:
					predicted, filtered = false, true
				case cfg.FilterTrue && guardImpliesTaken:
					predicted, filteredTrue = true, true
				default:
					usePredictor = true
				}
			} else {
				usePredictor = true
			}
			if usePredictor {
				predicted = cfg.Predictor.Predict(uint64(idx))
			}
		}
		if in.IsPredDef() {
			sfpf.FetchDef(in.PredDests()...)
		}

		// Issue: stall until source operands are ready, then take one of
		// the cycle's issue slots.
		ready := cycle
		for _, r := range in.RegSources() {
			if regReady[r] > ready {
				ready = regReady[r]
			}
		}
		if ready > cycle {
			st.Stalls += ready - cycle
			cycle = ready
			slot = 0
		}
		issue := cycle
		slot++
		if slot >= width {
			cycle++
			slot = 0
		}

		si, err := m.Step()
		if err != nil {
			return st, err
		}
		st.Insts++
		if !si.GuardTrue {
			st.Nullified++
		}
		if d, ok := in.RegDest(); ok && d != isa.R0 && si.GuardTrue {
			regReady[d] = issue + latency(in.Op)
		}

		// Schedule predicate resolution for the fetch-stage structures.
		if in.IsPredDef() {
			pr := pendingResolve{at: issue + cfg.PredResolveLatency}
			for _, pd := range in.PredDests() {
				if pd == isa.P0 {
					continue
				}
				pr.preds = append(pr.preds, pd)
				pr.vals = append(pr.vals, m.Preds[pd])
			}
			if in.Op == isa.OpCmp && si.GuardTrue && cfg.PGU != core.PGUOff && obs != nil {
				mask := uint64(1)<<in.PD1 | uint64(1)<<in.PD2
				selected := false
				switch cfg.PGU {
				case core.PGUAll:
					selected = true
				case core.PGUBranchGuards:
					selected = branchGuards&mask != 0
				case core.PGURegionGuards:
					selected = regionGuards&mask != 0
				}
				if selected {
					pr.pgu, pr.pguBit = true, si.CmpValue
				}
			}
			pending = append(pending, pr)
		}

		// Resolve the branch.
		if isCondBranch {
			switch {
			case filtered:
				st.Filtered++
				if si.Taken {
					st.FilterErrors++
				}
				if cfg.TrainFiltered {
					cfg.Predictor.Update(uint64(idx), si.Taken)
				}
			case filteredTrue:
				st.FilteredTrue++
				if !si.Taken {
					st.FilterErrors++
				}
				if cfg.TrainFiltered {
					cfg.Predictor.Update(uint64(idx), si.Taken)
				}
			default:
				if predicted != si.Taken {
					st.Mispredicts++
					if in.Region {
						st.RegionMispredicts++
					}
					cycle += cfg.MispredictPenalty
					slot = 0
				}
				cfg.Predictor.Update(uint64(idx), si.Taken)
			}
		}
		// Return-address stack: calls push their return point; indirect
		// branches pop a predicted target and pay the flush penalty when
		// it is wrong (or when the stack is empty/disabled).
		if si.GuardTrue {
			switch in.Op {
			case isa.OpBrl:
				if cfg.RASDepth > 0 {
					if len(ras) == cfg.RASDepth {
						copy(ras, ras[1:])
						ras = ras[:len(ras)-1]
					}
					ras = append(ras, idx+1)
				}
			case isa.OpBrr:
				st.IndirectBranches++
				predicted := -1
				if len(ras) > 0 {
					predicted = ras[len(ras)-1]
					ras = ras[:len(ras)-1]
				}
				if predicted != si.NextPC {
					st.RASMisses++
					cycle += cfg.MispredictPenalty
					slot = 0
				}
			}
		}

		// A taken branch ends its issue group: the redirected fetch starts
		// a new cycle.
		if si.Taken && slot != 0 {
			cycle++
			slot = 0
		}
	}
	if slot != 0 {
		cycle++
	}
	st.Cycles = cycle
	st.ExitCode = m.ExitCode
	return st, nil
}
