package pipeline

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ifconv"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/workload"
)

const runLimit = 3_000_000

func runCfg(t *testing.T, p *prog.Program, cfg Config) Stats {
	t.Helper()
	st, err := Run(p, cfg, runLimit)
	if err != nil {
		t.Fatalf("pipeline run %s: %v", p.Name, err)
	}
	return st
}

func TestStraightLineTiming(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)
	b.Movi(2, 2)
	b.Add(3, 1, 2) // r1 ready at cycle 0+1... depends on movi latency 1
	b.Halt(0)
	st := runCfg(t, b.MustProgram(), DefaultConfig(bpred.NewBimodal(8)))
	if st.Insts != 4 {
		t.Errorf("insts = %d", st.Insts)
	}
	// Independent single-cycle instructions: cycles == insts.
	if st.Cycles != 4 {
		t.Errorf("cycles = %d, want 4 (stalls %d)", st.Cycles, st.Stalls)
	}
	if st.Branches != 0 {
		t.Errorf("branches = %d in branch-free code", st.Branches)
	}
}

func TestLoadUseStall(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 500)
	b.Ld(2, 1, 0)   // latency 3
	b.Addi(3, 2, 1) // depends on the load
	b.Halt(0)
	st := runCfg(t, b.MustProgram(), DefaultConfig(bpred.NewBimodal(8)))
	if st.Stalls == 0 {
		t.Error("no stall on load-use dependence")
	}
	// Independent version: no stall.
	b2 := prog.NewBuilder("t2")
	b2.Movi(1, 500)
	b2.Ld(2, 1, 0)
	b2.Addi(3, 1, 1) // independent
	b2.Halt(0)
	st2 := runCfg(t, b2.MustProgram(), DefaultConfig(bpred.NewBimodal(8)))
	if st2.Stalls != 0 {
		t.Errorf("unexpected stalls: %d", st2.Stalls)
	}
	if st2.Cycles >= st.Cycles {
		t.Errorf("independent code not faster: %d vs %d", st2.Cycles, st.Cycles)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	// Random branch: ~50% mispredicts; predictable branch: ~0.
	randP := workload.ByNameMust("rand").Build()
	streamP := workload.ByNameMust("stream").Build()
	r := runCfg(t, randP, DefaultConfig(bpred.NewGShare(12, 8)))
	s := runCfg(t, streamP, DefaultConfig(bpred.NewGShare(12, 8)))
	if r.MispredictRate() < 0.15 {
		t.Errorf("rand misprediction rate %.3f suspiciously low", r.MispredictRate())
	}
	if s.MispredictRate() > 0.05 {
		t.Errorf("stream misprediction rate %.3f suspiciously high", s.MispredictRate())
	}
	if r.IPC() >= s.IPC() {
		t.Errorf("rand IPC %.3f >= stream IPC %.3f", r.IPC(), s.IPC())
	}
}

func TestPenaltyParameterScales(t *testing.T) {
	p := workload.ByNameMust("rand").Build()
	lo := DefaultConfig(bpred.NewGShare(12, 8))
	lo.MispredictPenalty = 2
	hi := DefaultConfig(bpred.NewGShare(12, 8))
	hi.MispredictPenalty = 30
	slo := runCfg(t, p, lo)
	shi := runCfg(t, p, hi)
	if shi.Cycles <= slo.Cycles {
		t.Errorf("larger penalty not slower: %d vs %d", shi.Cycles, slo.Cycles)
	}
	if slo.Mispredicts != shi.Mispredicts {
		t.Errorf("penalty changed misprediction count: %d vs %d", slo.Mispredicts, shi.Mispredicts)
	}
}

func TestNullifiedCounted(t *testing.T) {
	p := workload.FalsePathDemo(200, 2, 3)
	st := runCfg(t, p, DefaultConfig(bpred.NewGShare(12, 8)))
	if st.Nullified == 0 {
		t.Error("predicated program shows no nullified instructions")
	}
}

func TestUnconditionalBranchesNotPredicted(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 3)
	b.Label("top")
	b.Br("skip") // unconditional
	b.Label("skip")
	b.Subi(1, 1, 1)
	b.Cmpi(isa.CmpGT, 2, 3, 1, 0)
	b.BrIf(2, "top")
	b.Halt(0)
	st := runCfg(t, b.MustProgram(), DefaultConfig(bpred.NewGShare(12, 8)))
	// Only the guarded loop branch counts: 3 iterations of it.
	if st.Branches != 3 {
		t.Errorf("branches = %d, want 3", st.Branches)
	}
}

func TestSFPFInPipeline(t *testing.T) {
	p := workload.FalsePathDemo(2000, 8, 7)
	base := runCfg(t, p, DefaultConfig(bpred.NewGShare(12, 8)))
	cfg := DefaultConfig(bpred.NewGShare(12, 8))
	cfg.UseSFPF = true
	filt := runCfg(t, p, cfg)
	if filt.FilterErrors != 0 {
		t.Fatalf("filter errors: %d", filt.FilterErrors)
	}
	if filt.Filtered == 0 {
		t.Fatal("pipeline filter never fired")
	}
	if filt.Mispredicts >= base.Mispredicts {
		t.Errorf("SFPF did not reduce mispredicts: %d -> %d", base.Mispredicts, filt.Mispredicts)
	}
	if filt.Cycles >= base.Cycles {
		t.Errorf("SFPF did not reduce cycles: %d -> %d", base.Cycles, filt.Cycles)
	}
}

func TestSFPFResolveLatencyInPipeline(t *testing.T) {
	// With only one instruction between define and branch, a 5-cycle
	// resolve latency leaves the guard unknown; with long filler it is
	// known.
	near := workload.FalsePathDemo(500, 1, 8)
	far := workload.FalsePathDemo(500, 10, 8)
	cfg := DefaultConfig(bpred.NewGShare(12, 8))
	cfg.UseSFPF = true
	sn := runCfg(t, near, cfg)
	cfg2 := DefaultConfig(bpred.NewGShare(12, 8))
	cfg2.UseSFPF = true
	sf := runCfg(t, far, cfg2)
	if sn.FilterErrors != 0 || sf.FilterErrors != 0 {
		t.Fatal("filter errors")
	}
	if sn.Filtered >= sf.Filtered {
		t.Errorf("near filter count %d >= far %d", sn.Filtered, sf.Filtered)
	}
}

func TestPGUInPipeline(t *testing.T) {
	p := workload.CorrelatedDemo(3000, 9)
	base := runCfg(t, p, DefaultConfig(bpred.NewGShare(12, 8)))
	cfg := DefaultConfig(bpred.NewGShare(12, 8))
	cfg.PGU = core.PGUAll
	pgu := runCfg(t, p, cfg)
	if pgu.InsertedBits == 0 {
		t.Fatal("no bits inserted")
	}
	if pgu.Mispredicts*2 > base.Mispredicts {
		t.Errorf("PGU ineffective in pipeline: %d -> %d", base.Mispredicts, pgu.Mispredicts)
	}
}

func TestPipelineMatchesEmulatorResults(t *testing.T) {
	// Timing must not change architectural behaviour.
	for _, w := range workload.All() {
		p := w.Build()
		st := runCfg(t, p, DefaultConfig(bpred.NewGShare(12, 8)))
		if st.ExitCode != 0 {
			t.Errorf("%s exited %d under the pipeline", w.Name, st.ExitCode)
		}
		if st.Cycles < st.Insts {
			t.Errorf("%s: cycles %d < insts %d", w.Name, st.Cycles, st.Insts)
		}
	}
}

func TestPredicationTradeoffEndToEnd(t *testing.T) {
	// The paper's core performance claim, end to end on the timing model:
	// on a hard-to-predict diamond (rand), if-converted code beats
	// branching code; on predictable code (stream), predication must not
	// win big (it can only add nullified slots).
	newPred := func() bpred.Predictor { return bpred.NewGShare(12, 8) }
	run := func(p *prog.Program) Stats { return runCfg(t, p, DefaultConfig(newPred())) }
	conv := func(p *prog.Program) *prog.Program {
		cp, _, err := ifconv.Convert(p, ifconv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	randP := workload.ByNameMust("rand").Build()
	if o, c := run(randP), run(conv(randP)); c.Cycles >= o.Cycles {
		t.Errorf("rand: predication lost: %d -> %d cycles", o.Cycles, c.Cycles)
	}
	streamP := workload.ByNameMust("stream").Build()
	o, c := run(streamP), run(conv(streamP))
	if float64(c.Cycles) > 1.15*float64(o.Cycles) {
		t.Errorf("stream: predication regressed too much: %d -> %d cycles", o.Cycles, c.Cycles)
	}
}

func TestIssueWidthSpeedsUp(t *testing.T) {
	p := workload.ByNameMust("classify").Build()
	w1 := DefaultConfig(bpred.NewGShare(12, 8))
	w4 := DefaultConfig(bpred.NewGShare(12, 8))
	w4.IssueWidth = 4
	s1 := runCfg(t, p, w1)
	s4 := runCfg(t, p, w4)
	if s4.Cycles >= s1.Cycles {
		t.Errorf("width 4 not faster: %d vs %d cycles", s4.Cycles, s1.Cycles)
	}
	if s1.Mispredicts != s4.Mispredicts {
		t.Errorf("width changed misprediction count: %d vs %d", s1.Mispredicts, s4.Mispredicts)
	}
	// On independent straight-line code, a width-4 machine must exceed one
	// instruction per cycle.
	b := prog.NewBuilder("wide")
	for r := 1; r <= 16; r++ {
		b.Movi(isa.Reg(r), int64(r))
	}
	b.Halt(0)
	w4s := DefaultConfig(bpred.NewGShare(12, 8))
	w4s.IssueWidth = 4
	if st := runCfg(t, b.MustProgram(), w4s); st.IPC() <= 2 {
		t.Errorf("independent code at width 4: IPC = %.3f, expected > 2", st.IPC())
	}
}

func TestWidthAmplifiesPredicationWin(t *testing.T) {
	// Nullified slots get cheaper on wide machines while mispredict
	// penalties stay flat: the predication speedup must grow with width.
	p := workload.ByNameMust("rand").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(width int) float64 {
		mk := func() Config {
			c := DefaultConfig(bpred.NewGShare(12, 8))
			c.IssueWidth = width
			return c
		}
		o := runCfg(t, p, mk())
		c := runCfg(t, cp, mk())
		return float64(o.Cycles) / float64(c.Cycles)
	}
	if s1, s4 := speedup(1), speedup(4); s4 <= s1 {
		t.Errorf("predication speedup did not grow with width: %.3f -> %.3f", s1, s4)
	}
}

func TestZeroWidthDefaultsToOne(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)
	b.Halt(0)
	cfg := Config{Predictor: bpred.NewBimodal(4)}
	st, err := Run(b.MustProgram(), cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 {
		t.Errorf("cycles = %d, want 2", st.Cycles)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := workload.ByNameMust("queens").Build()
	deep := DefaultConfig(bpred.NewGShare(12, 8)) // default depth 8 covers 7 levels
	sd := runCfg(t, p, deep)
	if sd.IndirectBranches == 0 {
		t.Fatal("queens shows no indirect branches")
	}
	if sd.RASMisses != 0 {
		t.Errorf("deep RAS missed %d of %d returns", sd.RASMisses, sd.IndirectBranches)
	}
	off := DefaultConfig(bpred.NewGShare(12, 8))
	off.NoRAS = true
	so := runCfg(t, p, off)
	if so.RASMisses != so.IndirectBranches {
		t.Errorf("disabled RAS should miss every return: %d of %d", so.RASMisses, so.IndirectBranches)
	}
	if so.Cycles <= sd.Cycles {
		t.Errorf("RAS gave no speedup: %d vs %d cycles", sd.Cycles, so.Cycles)
	}
}

func TestRASDepthMatters(t *testing.T) {
	// 7-queens recurses 8 deep: a depth-2 stack must miss far more than a
	// depth-8 one, and more depth can only help.
	p := workload.ByNameMust("queens").Build()
	misses := func(depth int) uint64 {
		cfg := DefaultConfig(bpred.NewGShare(12, 8))
		cfg.RASDepth = depth
		return runCfg(t, p, cfg).RASMisses
	}
	m2, m4, m8 := misses(2), misses(4), misses(8)
	if !(m2 > m4 && m4 > m8) {
		t.Errorf("RAS misses not decreasing with depth: %d, %d, %d", m2, m4, m8)
	}
	if m8 != 0 {
		t.Errorf("depth-8 RAS missed %d returns on depth-8 recursion", m8)
	}
}

func TestRunErrorsWithoutPredictor(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Halt(0)
	if _, err := Run(b.MustProgram(), Config{}, 10); err == nil {
		t.Fatal("run without predictor succeeded")
	}
}

func TestPipelineInvariants(t *testing.T) {
	// Over random programs and configurations, the timing model must
	// respect its structural invariants.
	rounds := 25
	if testing.Short() {
		rounds = 6
	}
	for i := 0; i < rounds; i++ {
		p := workload.Synth(uint64(i)*101+3, 50)
		if i%2 == 1 {
			cp, _, err := ifconv.Convert(p, ifconv.Config{})
			if err != nil {
				t.Fatal(err)
			}
			p = cp
		}
		cfg := DefaultConfig(bpred.NewGShare(10, 6))
		cfg.IssueWidth = 1 + i%4
		cfg.MispredictPenalty = uint64(2 + i%15)
		cfg.UseSFPF = i%3 == 0
		cfg.PGU = core.PGUPolicy(i % 4)
		st, err := Run(p, cfg, 3_000_000)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if st.ExitCode != 0 {
			t.Fatalf("round %d: exit %d", i, st.ExitCode)
		}
		// A width-W machine cannot beat W instructions per cycle.
		minCycles := st.Insts / uint64(cfg.IssueWidth)
		if st.Cycles < minCycles {
			t.Fatalf("round %d: cycles %d < insts/width %d", i, st.Cycles, minCycles)
		}
		if st.Mispredicts+st.Filtered+st.FilteredTrue > st.Branches {
			t.Fatalf("round %d: branch accounting broken: %+v", i, st)
		}
		if st.FilterErrors != 0 {
			t.Fatalf("round %d: filter errors %d", i, st.FilterErrors)
		}
		if st.Nullified > st.Insts {
			t.Fatalf("round %d: nullified %d > insts %d", i, st.Nullified, st.Insts)
		}
	}
}

func TestPipelineFunctionalAgreement(t *testing.T) {
	// The timing model must execute programs identically to the plain
	// emulator (same exit, same dynamic instruction count).
	for _, w := range workload.All() {
		p := w.Build()
		st, err := Run(p, DefaultConfig(bpred.NewBimodal(10)), 0)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := emu.RunProgram(w.Build(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Insts != res.Steps || st.ExitCode != res.ExitCode || st.Nullified != res.Nullified {
			t.Errorf("%s: pipeline (%d insts, %d nullified, exit %d) disagrees with emulator (%d, %d, %d)",
				w.Name, st.Insts, st.Nullified, st.ExitCode, res.Steps, res.Nullified, res.ExitCode)
		}
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 {
		t.Error("zero stats not zero")
	}
}
