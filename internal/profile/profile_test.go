package profile

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/workload"
)

func TestCollectCounts(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 3)
	b.Label("loop")
	b.Subi(1, 1, 1)
	b.Cmpi(isa.CmpGT, 2, 3, 1, 0)
	b.BrIf(2, "loop")
	b.Halt(0)
	p := b.MustProgram()
	prof, err := Collect(p, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Exec[0] != 1 {
		t.Errorf("entry executed %d times", prof.Exec[0])
	}
	if prof.Exec[1] != 3 { // loop body runs 3 times
		t.Errorf("loop body executed %d times", prof.Exec[1])
	}
	if prof.Taken[3] != 2 { // back edge taken twice
		t.Errorf("back edge taken %d times", prof.Taken[3])
	}
	if prof.Insts == 0 {
		t.Error("no instruction count")
	}
}

func TestCollectMispredicts(t *testing.T) {
	// A random 50/50 branch must show substantial mispredictions; a
	// constant-direction loop branch must show almost none.
	p := workload.ByNameMust("rand").Build()
	prof, err := Collect(p, bpred.NewGShare(12, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, m := range prof.Mispredict {
		total += m
	}
	if total < 1000 {
		t.Errorf("rand profile shows only %d mispredicts", total)
	}

	p2 := workload.ByNameMust("stream").Build()
	prof2, err := Collect(p2, bpred.NewGShare(12, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var total2 uint64
	for _, m := range prof2.Mispredict {
		total2 += m
	}
	if total2 > 200 {
		t.Errorf("stream profile shows %d mispredicts", total2)
	}
}

func TestBlockExecBounds(t *testing.T) {
	p := &Profile{Exec: []uint64{5, 7}}
	if p.BlockExec(-1) != 0 || p.BlockExec(2) != 0 {
		t.Error("out-of-range BlockExec not zero")
	}
	if p.BlockExec(1) != 7 {
		t.Error("BlockExec wrong")
	}
}

func TestCollectLimit(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Label("x")
	b.Br("x")
	if _, err := Collect(b.MustProgram(), nil, 50); err == nil {
		t.Fatal("infinite loop did not hit limit")
	}
}
