// Package profile collects execution profiles used for profile-guided
// if-conversion, mirroring the IMPACT methodology the paper's binaries
// came from: hyperblock formation there was driven by profiled execution
// weights and branch behaviour, converting a region only when the expected
// misprediction savings outweigh the cost of fetching both paths.
package profile

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Profile holds per-instruction execution counts and per-branch predictor
// behaviour for one program run.
type Profile struct {
	// Exec[i] is the number of times instruction i was fetched.
	Exec []uint64
	// Taken[i] is the number of times branch i redirected control.
	Taken []uint64
	// Mispredict[i] is the number of times the reference predictor
	// mispredicted conditional branch i.
	Mispredict []uint64
	// Insts is the total dynamic instruction count.
	Insts uint64
}

// BlockExec returns the execution count of the block spanning
// [start, end) using its first instruction as the representative.
func (p *Profile) BlockExec(start int) uint64 {
	if start < 0 || start >= len(p.Exec) {
		return 0
	}
	return p.Exec[start]
}

// Collect runs the program to completion, counting fetches per
// instruction and mispredictions per conditional branch under the given
// reference predictor (reset before use). A nil predictor defaults to
// gshare 12/8.
func Collect(pr *prog.Program, pred bpred.Predictor, limit uint64) (*Profile, error) {
	if pred == nil {
		pred = bpred.NewGShare(12, 8)
	}
	pred.Reset()
	m, err := emu.New(pr)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Exec:       make([]uint64, len(pr.Insts)),
		Taken:      make([]uint64, len(pr.Insts)),
		Mispredict: make([]uint64, len(pr.Insts)),
	}
	for !m.Halted {
		if limit > 0 && m.Steps >= limit {
			return nil, fmt.Errorf("profile: %w (%d steps in %s)", emu.ErrLimit, m.Steps, pr.Name)
		}
		si, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		p.Exec[si.Index]++
		in := si.Inst
		if !in.IsBranch() {
			continue
		}
		if si.Taken {
			p.Taken[si.Index]++
		}
		conditional := (in.Op == isa.OpBr || in.Op == isa.OpBrl) && in.QP != isa.P0 ||
			in.Op == isa.OpCloop
		if conditional {
			if pred.Predict(uint64(si.Index)) != si.Taken {
				p.Mispredict[si.Index]++
			}
			pred.Update(uint64(si.Index), si.Taken)
		}
	}
	p.Insts = m.Steps
	return p, nil
}
