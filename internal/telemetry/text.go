package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a strict parser
// used both as a lint gate (every bpservd/bprouter scrape must pass it
// in tests and in the CI cluster smoke) and as bptop's scrape decoder.
// Strictness is the point — the renderer and parser are written against
// the same rules, so any drift between them fails loudly.

// Label is one name="value" pair, in series order.
type Label struct {
	Name, Value string
}

// Sample is one parsed series line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" if absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one parsed metric family with its samples in input order.
// Histogram families include their _bucket/_sum/_count samples.
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// Sample returns the first sample with the exact series name and the
// given label constraints (nil if none).
func (f *Family) Sample(name string, labels map[string]string) *Sample {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Label(k) != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// ParseText parses and lints a Prometheus text exposition page. It
// enforces the contract the telemetry renderer promises:
//
//   - every series belongs to a family declared by a HELP line followed
//     by a TYPE line before any of its series;
//   - no family is declared twice and no series repeats a label set;
//   - metric and label names are well-formed, label values are quoted
//     with valid escapes, values parse as floats, no timestamps;
//   - histogram families have, per label set, monotone cumulative
//     bucket counts over ascending le values ending in +Inf, with a
//     _count equal to the +Inf bucket and a _sum present.
//
// Families are returned in input order.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	byName := map[string]*Family{}
	var order []*Family
	seenSeries := map[string]bool{}
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("exposition line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			switch kind {
			case "HELP":
				if byName[name] != nil {
					return nil, fail("duplicate HELP for %s", name)
				}
				f := &Family{Name: name, Help: rest}
				byName[name] = f
				order = append(order, f)
			case "TYPE":
				f := byName[name]
				if f == nil {
					return nil, fail("TYPE %s before its HELP", name)
				}
				if f.Type != "" {
					return nil, fail("duplicate TYPE for %s", name)
				}
				if len(f.Samples) > 0 {
					return nil, fail("TYPE %s after its series", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = rest
				default:
					return nil, fail("unknown TYPE %q for %s", rest, name)
				}
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		f := byName[s.Name]
		if f == nil {
			// Histogram component series attach to their base family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(s.Name, suffix); ok {
					if bf := byName[base]; bf != nil && bf.Type == "histogram" {
						f = bf
						break
					}
				}
			}
		}
		if f == nil {
			return nil, fail("series %s has no preceding HELP/TYPE", s.Name)
		}
		if f.Type == "" {
			return nil, fail("series %s before its TYPE", s.Name)
		}
		key := seriesKey(s)
		if seenSeries[key] {
			return nil, fail("duplicate series %s", key)
		}
		seenSeries[key] = true
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, f := range order {
		if f.Type == "" {
			return nil, fmt.Errorf("exposition: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := lintHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return copyOut(order), nil
}

func copyOut(order []*Family) []Family {
	out := make([]Family, len(order))
	for i, f := range order {
		out[i] = *f
	}
	return out
}

// Lint runs ParseText purely for its checks.
func Lint(r io.Reader) error {
	_, err := ParseText(r)
	return err
}

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q (only # HELP / # TYPE allowed)", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q (only HELP/TYPE allowed)", kind)
	}
	name = fields[2]
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "HELP" {
		rest = unescapeHelp(rest)
	}
	return kind, name, rest, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// parseSample parses `name{l="v",...} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed series %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		if s.Labels, rest, err = parseLabels(rest); err != nil {
			return s, fmt.Errorf("series %s: %w", s.Name, err)
		}
		seen := map[string]bool{}
		for _, l := range s.Labels {
			if seen[l.Name] {
				return s, fmt.Errorf("series %s repeats label %s", s.Name, l.Name)
			}
			seen[l.Name] = true
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("series %s: expected exactly one value, got %q (timestamps are not accepted)", s.Name, rest)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("series %s: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {name="value",...} block, returning what
// follows it.
func parseLabels(in string) ([]Label, string, error) {
	var out []Label
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return out, in[i+1:], nil
		}
		j := strings.IndexByte(in[i:], '=')
		if j < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := in[i : i+j]
		if !validName(name) || strings.Contains(name, ":") {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

func seriesKey(s Sample) string {
	parts := make([]string, 0, len(s.Labels)+1)
	parts = append(parts, s.Name)
	for _, l := range s.Labels {
		parts = append(parts, l.Name+"="+l.Value)
	}
	// Label order is part of the renderer contract, but for duplicate
	// detection a canonical order is what matters.
	sort.Strings(parts[1:])
	return strings.Join(parts, "\xff")
}

// lintHistogram checks one histogram family's bucket discipline.
func lintHistogram(f *Family) error {
	type group struct {
		les     []float64
		cums    []uint64
		infSeen bool
		count   *float64
		sumSeen bool
	}
	groups := map[string]*group{}
	keyOf := func(s *Sample) string {
		parts := []string{}
		for _, l := range s.Labels {
			if l.Name != "le" {
				parts = append(parts, l.Name+"="+l.Value)
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, "\xff")
	}
	get := func(s *Sample) *group {
		k := keyOf(s)
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		return g
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			g := get(s)
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			if le == "+Inf" {
				g.infSeen = true
				g.les = append(g.les, math.Inf(1))
			} else {
				if g.infSeen {
					return fmt.Errorf("histogram %s: bucket after +Inf", f.Name)
				}
				ub, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", f.Name, le)
				}
				g.les = append(g.les, ub)
			}
			g.cums = append(g.cums, uint64(s.Value))
		case f.Name + "_sum":
			get(s).sumSeen = true
		case f.Name + "_count":
			v := s.Value
			get(s).count = &v
		case f.Name:
			return fmt.Errorf("histogram %s: bare series (want _bucket/_sum/_count)", f.Name)
		}
	}
	for k, g := range groups {
		where := f.Name
		if k != "" {
			where += "{" + strings.ReplaceAll(k, "\xff", ",") + "}"
		}
		if len(g.les) == 0 {
			return fmt.Errorf("histogram %s: no buckets", where)
		}
		if !g.infSeen {
			return fmt.Errorf("histogram %s: missing +Inf bucket", where)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram %s: le values not ascending", where)
			}
			if g.cums[i] < g.cums[i-1] {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease", where)
			}
		}
		if g.count == nil {
			return fmt.Errorf("histogram %s: missing _count", where)
		}
		if !g.sumSeen {
			return fmt.Errorf("histogram %s: missing _sum", where)
		}
		if *g.count != float64(g.cums[len(g.cums)-1]) {
			return fmt.Errorf("histogram %s: _count %g disagrees with +Inf bucket %d", where, *g.count, g.cums[len(g.cums)-1])
		}
	}
	return nil
}

// BucketQuantile estimates the q-quantile (0..1) from cumulative
// histogram buckets: les are the upper bounds including a final +Inf,
// cums the cumulative counts per bucket. Values interpolate linearly
// within a bucket; a quantile landing in the +Inf bucket reports the
// last finite bound (the histogram cannot resolve beyond it). Returns 0
// for an empty histogram.
func BucketQuantile(les []float64, cums []uint64, q float64) float64 {
	if len(les) == 0 || len(les) != len(cums) {
		return 0
	}
	total := cums[len(cums)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := sort.Search(len(cums), func(i int) bool { return float64(cums[i]) >= rank })
	if i == len(cums) {
		i = len(cums) - 1
	}
	if math.IsInf(les[i], 1) {
		if len(les) >= 2 {
			return les[len(les)-2]
		}
		return 0
	}
	lower, below := 0.0, uint64(0)
	if i > 0 {
		lower, below = les[i-1], cums[i-1]
	}
	in := cums[i] - below
	if in == 0 {
		return les[i]
	}
	return lower + (les[i]-lower)*(rank-float64(below))/float64(in)
}
