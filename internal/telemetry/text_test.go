package telemetry

import (
	"strings"
	"testing"
)

func parseErr(t *testing.T, page string) error {
	t.Helper()
	return Lint(strings.NewReader(page))
}

func TestParseTextAccepts(t *testing.T) {
	page := `# HELP a_total Things.
# TYPE a_total counter
a_total 3
# HELP b_seconds Lat.
# TYPE b_seconds histogram
b_seconds_bucket{le="0.1"} 1
b_seconds_bucket{le="+Inf"} 2
b_seconds_sum 1.5
b_seconds_count 2
# HELP g Gauge with no samples is fine.
# TYPE g gauge
`
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "a_total" || fams[0].Type != "counter" || fams[0].Help != "Things." {
		t.Errorf("family 0 = %+v", fams[0])
	}
	if n := len(fams[1].Samples); n != 4 {
		t.Errorf("histogram has %d samples, want 4", n)
	}
	if s := fams[1].Sample("b_seconds_bucket", map[string]string{"le": "0.1"}); s == nil || s.Value != 1 {
		t.Errorf("bucket lookup failed: %+v", s)
	}
}

func TestParseTextRejects(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string // substring of the error
	}{
		{"series before HELP", "a_total 1\n", "no preceding HELP"},
		{"TYPE before HELP", "# TYPE a_total counter\n", "before its HELP"},
		{"series before TYPE", "# HELP a_total x\na_total 1\n", "before its TYPE"},
		{"HELP without TYPE", "# HELP a_total x\n", "no TYPE"},
		{"duplicate HELP", "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n", "duplicate HELP"},
		{"duplicate TYPE", "# HELP a x\n# TYPE a counter\n# TYPE a counter\n", "duplicate TYPE"},
		{"TYPE after series", "# HELP a x\n# TYPE a counter\na 1\n# HELP b y\n# TYPE a counter\n", "duplicate TYPE"},
		{"unknown type", "# HELP a x\n# TYPE a ring\n", "unknown TYPE"},
		{"duplicate series", "# HELP a x\n# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"duplicate labeled series", "# HELP a x\n# TYPE a counter\na{l=\"v\"} 1\na{l=\"v\"} 2\n", "duplicate series"},
		{"bad metric name", "# HELP 0a x\n# TYPE 0a counter\n", "invalid metric name"},
		{"bad label name", "# HELP a x\n# TYPE a counter\na{0l=\"v\"} 1\n", "invalid label name"},
		{"unquoted label", "# HELP a x\n# TYPE a counter\na{l=v} 1\n", "not quoted"},
		{"bad escape", `# HELP a x` + "\n# TYPE a counter\na{l=\"\\q\"} 1\n", "invalid escape"},
		{"unterminated value", "# HELP a x\n# TYPE a counter\na{l=\"v 1\n", "unterminated"},
		{"repeated label", "# HELP a x\n# TYPE a counter\na{l=\"1\",l=\"2\"} 1\n", "repeats label"},
		{"bad value", "# HELP a x\n# TYPE a counter\na pony\n", "bad value"},
		{"timestamp", "# HELP a x\n# TYPE a counter\na 1 12345\n", "one value"},
		{"stray comment", "# just a note\n", "unknown comment"},
		{"histogram no inf", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"histogram le order", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not ascending"},
		{"histogram cum decrease", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "decrease"},
		{"histogram count mismatch", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "disagrees"},
		{"histogram missing sum", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"histogram missing count", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
		{"histogram bare series", "# HELP h x\n# TYPE h histogram\nh 1\n", "bare series"},
		{"bucket after inf", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"2\"} 1\nh_sum 1\nh_count 1\n", "after +Inf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parseErr(t, tc.page)
			if err == nil {
				t.Fatalf("accepted invalid page:\n%s", tc.page)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTextLabelValues checks escape handling round-trips through
// the parser.
func TestParseTextLabelValues(t *testing.T) {
	page := "# HELP a x\n# TYPE a gauge\n" +
		`a{l="back\\slash",m="qu\"ote",n="new\nline"} 1` + "\n"
	fams, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	s := fams[0].Samples[0]
	if s.Label("l") != `back\slash` || s.Label("m") != `qu"ote` || s.Label("n") != "new\nline" {
		t.Errorf("labels did not unescape: %+v", s.Labels)
	}
	if s.Label("absent") != "" {
		t.Error("absent label not empty")
	}
}
