// Package telemetry is the fleet's shared observability layer: a
// dependency-free metrics registry (counters, scrape-time gauges,
// fixed-bucket histograms, and labeled counter/histogram vecs with an
// allocation-free hot path) rendered deterministically in the
// Prometheus text exposition format, a strict parser/linter for that
// format (see text.go), and request tracing across tiers (see
// tracer.go).
//
// Both bpservd and bprouter build their /metrics pages on one Registry
// each, so the exposition rules — HELP/TYPE before series, sorted
// families, sorted series, escaped labels, monotone histogram buckets —
// are enforced in exactly one place and bptop can parse any tier's
// scrape with the same Lint entry point.
//
// Hot-path discipline: Counter.Inc/Add and Histogram.Observe are pure
// atomics. Vec lookups (CounterVec.With, HistogramVec.With) take a
// mutex and may allocate, so callers resolve handles once at setup; for
// the one genuinely dynamic label — the HTTP status code — CodeCounter
// caches resolved handles behind an atomic pointer table so the
// steady-state request path performs no locking and no allocation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram. Observations are atomic; the
// scrape path snapshots bucket counts first and derives the sample
// count from that snapshot, so a scrape can never show a count that
// disagrees with the cumulative bucket sum, even mid-observation.
type Histogram struct {
	buckets []float64       // upper bounds, ascending; +Inf implicit
	counts  []atomic.Uint64 // one per bucket, +Inf at the end
	sumBits atomic.Uint64   // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot returns per-bucket counts, the total count derived from
// them, and the sum. Buckets are read first: the derived count is
// always consistent with the bucket cumsum (the sum may trail by
// in-flight observations, which Prometheus semantics tolerate).
func (h *Histogram) snapshot() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		count += counts[i]
	}
	return counts, count, math.Float64frombits(h.sumBits.Load())
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values, creating it on
// first use. It takes the family mutex: resolve handles at setup, not
// per event.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.fam.series(values)
	if s.counter == nil {
		panic("telemetry: internal: counter family holds non-counter")
	}
	return s.counter
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	fam *family
}

// With returns the histogram for the given label values, creating it on
// first use. Same locking caveat as CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.fam.series(values)
	if s.hist == nil {
		panic("telemetry: internal: histogram family holds non-histogram")
	}
	return s.hist
}

// CodeCounter is the allocation-free fast path for a CounterVec whose
// final label is an HTTP status code: the leading label values (for
// example the endpoint) are fixed at construction, and the counter for
// each status code is resolved once and cached behind an atomic
// pointer, so the steady-state path is one atomic load plus one atomic
// add.
type CodeCounter struct {
	vec  *CounterVec
	base []string
	slot [500]atomic.Pointer[Counter] // status codes 100..599
}

// NewCodeCounter pre-binds the leading label values of vec; the status
// code supplied to Code becomes the final label value.
func NewCodeCounter(vec *CounterVec, base ...string) *CodeCounter {
	return &CodeCounter{vec: vec, base: append([]string(nil), base...)}
}

// Code returns the counter for one status code. Codes outside 100..599
// fall back to the locked vec lookup.
func (cc *CodeCounter) Code(code int) *Counter {
	in := code >= 100 && code < 600
	if in {
		if c := cc.slot[code-100].Load(); c != nil {
			return c
		}
	}
	vals := make([]string, 0, len(cc.base)+1)
	vals = append(vals, cc.base...)
	vals = append(vals, strconv.Itoa(code))
	c := cc.vec.With(vals...)
	if in {
		cc.slot[code-100].Store(c)
	}
	return c
}

// series is one label-value combination inside a family.
type series struct {
	values  []string
	counter *Counter
	hist    *Histogram
}

// family is one metric name: its metadata plus every series under it.
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histogram families only

	mu     sync.Mutex
	byKey  map[string]*series
	sorted []*series // maintained in sorted key order

	// collect, when set, produces the family's points at scrape time
	// (gauge families); such families hold no stored series.
	collect func(emit func(values []string, v float64))
}

// series returns (creating if needed) the series for the label values.
func (f *family) series(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		s.counter = new(Counter)
	case "histogram":
		s.hist = &Histogram{buckets: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	default:
		panic("telemetry: stored series on a " + f.typ + " family")
	}
	f.byKey[key] = s
	i := sort.Search(len(f.sorted), func(i int) bool {
		return strings.Join(f.sorted[i].values, "\xff") >= key
	})
	f.sorted = append(f.sorted, nil)
	copy(f.sorted[i+1:], f.sorted[i:])
	f.sorted[i] = s
	return s
}

// Registry owns a set of metric families and renders them as one
// Prometheus text page. Registration panics on invalid or duplicate
// names — those are programming errors, caught by the first scrape
// test, not conditions to handle at runtime.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) add(f *family) *family {
	if !validName(f.name) {
		panic("telemetry: invalid metric name " + strconv.Quote(f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic("telemetry: invalid label name " + strconv.Quote(l) + " on " + f.name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		panic("telemetry: duplicate metric " + f.name)
	}
	r.families[f.name] = f
	return f
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.add(&family{name: name, help: help, typ: "counter", byKey: map[string]*series{}})
	return (&CounterVec{fam: f}).With()
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.add(&family{name: name, help: help, typ: "counter", labels: labels, byKey: map[string]*series{}})
	return &CounterVec{fam: f}
}

// Histogram registers a label-less histogram with the given upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.add(&family{name: name, help: help, typ: "histogram", buckets: checkBuckets(name, buckets), byKey: map[string]*series{}})
	return (&HistogramVec{fam: f}).With()
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.add(&family{name: name, help: help, typ: "histogram", buckets: checkBuckets(name, buckets), labels: labels, byKey: map[string]*series{}})
	return &HistogramVec{fam: f}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram " + name + " buckets not ascending")
		}
	}
	return append([]float64(nil), buckets...)
}

// Gauge registers a gauge read by callback at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.GaugeVec(name, help, nil, func(emit func([]string, float64)) { emit(nil, fn()) })
}

// GaugeVec registers a labeled gauge family whose points are produced
// by the collect callback at scrape time. The callback may emit any
// number of points (including none); emitted label-value sets must be
// distinct within one scrape.
func (r *Registry) GaugeVec(name, help string, labels []string, collect func(emit func(values []string, v float64))) {
	r.add(&family{name: name, help: help, typ: "gauge", labels: labels, collect: collect})
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {a="x",b="y"} (empty string for no labels); extra
// appends one more pair (the histogram le label).
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Render writes every family in the Prometheus text exposition format:
// families sorted by name, series sorted by label values, HELP and TYPE
// lines before any series. Output for a fixed set of values is
// byte-stable, which the golden tests pin.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make(map[string]*family, len(names))
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		if f.collect != nil {
			f.renderCollect(w)
			continue
		}
		f.mu.Lock()
		ss := append([]*series(nil), f.sorted...)
		f.mu.Unlock()
		for _, s := range ss {
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.values, "", ""), s.counter.Value())
			case "histogram":
				counts, count, sum := s.hist.snapshot()
				cum := uint64(0)
				for i, ub := range f.buckets {
					cum += counts[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", formatFloat(ub)), cum)
				}
				cum += counts[len(f.buckets)]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, "", ""), formatFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, "", ""), count)
			}
		}
	}
}

// renderCollect gathers a collect family's points, sorts them, and
// writes them. A duplicate label set within one scrape panics: the
// collector broke the exposition contract.
func (f *family) renderCollect(w io.Writer) {
	type point struct {
		key    string
		values []string
		v      float64
	}
	var pts []point
	f.collect(func(values []string, v float64) {
		if len(values) != len(f.labels) {
			panic(fmt.Sprintf("telemetry: %s collector emitted %d label values, want %d", f.name, len(values), len(f.labels)))
		}
		pts = append(pts, point{key: strings.Join(values, "\xff"), values: append([]string(nil), values...), v: v})
	})
	sort.Slice(pts, func(i, j int) bool { return pts[i].key < pts[j].key })
	for i, p := range pts {
		if i > 0 && p.key == pts[i-1].key {
			panic("telemetry: " + f.name + " collector emitted duplicate label set")
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, p.values, "", ""), formatFloat(p.v))
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// RegisterBuildInfo adds the conventional build_info gauge
// (build_info{version,hash} 1), so any scrape identifies the running
// binary's build.
func RegisterBuildInfo(r *Registry, version, hash string) {
	r.GaugeVec("build_info", "Build identity of the running binary.", []string{"version", "hash"},
		func(emit func([]string, float64)) { emit([]string{version, hash}, 1) })
}
