package telemetry

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header that carries a request's correlation ID
// across tiers: bpload mints one per batch, bprouter mints one for any
// request arriving without it, and every hop logs it — so one ID
// follows a batch from the client through router retry/failover to
// whichever backend finally applied it.
const RequestIDHeader = "X-Request-Id"

// maxRequestID bounds accepted client-supplied IDs.
const maxRequestID = 128

// ValidRequestID reports whether a client-supplied request ID is safe
// to propagate into logs and label values: 1..128 bytes of
// [A-Za-z0-9._-]. Anything else is replaced by a minted ID rather than
// trusted.
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > maxRequestID {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// Span is one recorded hop of a request: which service handled which
// endpoint, with what status, and how long it took.
type Span struct {
	RequestID string
	Service   string
	Endpoint  string
	Status    int
	Start     time.Time
	Duration  time.Duration
}

// Tracer mints and propagates request IDs and records per-hop spans in
// a bounded ring, emitting a structured slow_request log line for any
// span over the threshold. All methods are safe for concurrent use.
type Tracer struct {
	service string
	log     *log.Logger
	slow    time.Duration // 0 disables slow-request logging

	ctr  atomic.Uint64
	salt uint64

	mu   sync.Mutex
	ring []Span
	next int
	seen uint64
}

// NewTracer builds a tracer for one service tier. logger may be nil
// (slow-request lines are then discarded); slow <= 0 disables
// slow-request logging entirely.
func NewTracer(service string, logger *log.Logger, slow time.Duration) *Tracer {
	return &Tracer{
		service: service,
		log:     logger,
		slow:    slow,
		salt:    rand.Uint64(),
		ring:    make([]Span, 256),
	}
}

// NewRequestID mints a fresh request ID, unique within the process and
// salted across processes.
func (t *Tracer) NewRequestID() string {
	return fmt.Sprintf("%s-%06x-%08x", t.service, t.ctr.Add(1), uint32(t.salt>>32)^uint32(t.salt)^rand.Uint32())
}

// EnsureRequestID returns the request's correlation ID, minting one and
// setting it on the request headers when absent or invalid — so a
// proxied request (whose headers are forwarded) carries the same ID to
// the next tier.
func (t *Tracer) EnsureRequestID(r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if !ValidRequestID(id) {
		id = t.NewRequestID()
		r.Header.Set(RequestIDHeader, id)
	}
	return id
}

// Record stores one completed span in the ring and logs it if slow.
func (t *Tracer) Record(sp Span) {
	if sp.Service == "" {
		sp.Service = t.service
	}
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	t.seen++
	t.mu.Unlock()
	if t.slow > 0 && sp.Duration >= t.slow && t.log != nil {
		t.log.Printf("slow_request service=%s endpoint=%s rid=%s status=%d dur_ms=%.1f",
			sp.Service, sp.Endpoint, sp.RequestID, sp.Status, float64(sp.Duration.Microseconds())/1000)
	}
}

// Recent returns up to n spans, newest first.
func (t *Tracer) Recent(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	have := int(t.seen)
	if t.seen > uint64(len(t.ring)) {
		have = len(t.ring)
	}
	if n > have {
		n = have
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[((t.next-1-i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// Spans returns the total number of spans recorded.
func (t *Tracer) Spans() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}
