package telemetry

import (
	"io"
	"log"
	"net/http/httptest"
	"testing"

	"net/http"
)

func newBufLogger(w io.Writer) *log.Logger { return log.New(w, "", 0) }

func newRequest(t *testing.T) *http.Request {
	t.Helper()
	return httptest.NewRequest(http.MethodGet, "http://example/x", nil)
}

// TestTracerNilLogger exercises the nil-logger and disabled-threshold
// paths.
func TestTracerNilLogger(t *testing.T) {
	tr := NewTracer("svc", nil, 1) // 1ns threshold, nil logger: must not panic
	tr.Record(Span{RequestID: "r", Endpoint: "e", Status: 200, Duration: 5})
	off := NewTracer("svc", newBufLogger(io.Discard), 0) // threshold off
	off.Record(Span{RequestID: "r", Endpoint: "e", Status: 200, Duration: 1 << 40})
	if got := off.Recent(1); len(got) != 1 {
		t.Fatalf("span not recorded: %d", len(got))
	}
}
