package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildRegistry assembles a registry exercising every metric kind with
// fixed values, for the golden-stability tests.
func buildRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("test_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	vec := reg.CounterVec("test_requests_total", "Requests by endpoint and code.", "endpoint", "code")
	vec.With("feed", "200").Add(7)
	vec.With("feed", "404").Inc()
	vec.With("create", "200").Add(3)
	reg.Gauge("test_live", "Live sessions.", func() float64 { return 12 })
	reg.GaugeVec("test_backend_up", "Backend health.", []string{"backend"}, func(emit func([]string, float64)) {
		emit([]string{`b"two\`}, 0) // exercises label escaping
		emit([]string{"b1"}, 1)
	})
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)
	hv := reg.HistogramVec("test_hop_seconds", "Per-hop latency.", []float64{0.25}, "hop")
	hv.With("router").Observe(0.1)
	RegisterBuildInfo(reg, "v1.2.3", "abcdef012345")
	return reg
}

const golden = `# HELP build_info Build identity of the running binary.
# TYPE build_info gauge
build_info{version="v1.2.3",hash="abcdef012345"} 1
# HELP test_backend_up Backend health.
# TYPE test_backend_up gauge
test_backend_up{backend="b\"two\\"} 0
test_backend_up{backend="b1"} 1
# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total 42
# HELP test_hop_seconds Per-hop latency.
# TYPE test_hop_seconds histogram
test_hop_seconds_bucket{hop="router",le="0.25"} 1
test_hop_seconds_bucket{hop="router",le="+Inf"} 1
test_hop_seconds_sum{hop="router"} 0.1
test_hop_seconds_count{hop="router"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.505
test_latency_seconds_count 3
# HELP test_live Live sessions.
# TYPE test_live gauge
test_live 12
# HELP test_requests_total Requests by endpoint and code.
# TYPE test_requests_total counter
test_requests_total{endpoint="create",code="200"} 3
test_requests_total{endpoint="feed",code="200"} 7
test_requests_total{endpoint="feed",code="404"} 1
`

// TestRenderGolden pins the exact rendering: sorted families, sorted
// series, escaped labels, histogram component ordering.
func TestRenderGolden(t *testing.T) {
	reg := buildRegistry()
	var buf bytes.Buffer
	reg.Render(&buf)
	if got := buf.String(); got != golden {
		t.Errorf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestRenderStable renders twice and requires byte-identical output.
func TestRenderStable(t *testing.T) {
	reg := buildRegistry()
	var a, b bytes.Buffer
	reg.Render(&a)
	reg.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

// TestRenderLints feeds the golden registry's own output through the
// strict parser: renderer and linter must agree on the format.
func TestRenderLints(t *testing.T) {
	reg := buildRegistry()
	var buf bytes.Buffer
	reg.Render(&buf)
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("own render fails lint: %v", err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["test_backend_up"]; f.Sample("test_backend_up", map[string]string{"backend": `b"two\`}) == nil {
		t.Errorf("escaped label did not round-trip: %+v", f.Samples)
	}
	if f := byName["test_events_total"]; len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Errorf("counter did not round-trip: %+v", f.Samples)
	}
}

// TestHistogramScrapeConsistency hammers a histogram from writers while
// scraping, requiring every scrape's _count to equal its +Inf bucket
// (the snapshot-first contract; a naive independent load of count and
// buckets fails this under the race detector's schedule perturbation).
func TestHistogramScrapeConsistency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "h", []float64{0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i%3) * 0.4)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		reg.Render(&buf)
		fams, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("scrape %d fails lint (count/bucket disagreement?): %v", i, err)
		}
		for _, f := range fams {
			cnt := f.Sample("h_seconds_count", nil)
			inf := f.Sample("h_seconds_bucket", map[string]string{"le": "+Inf"})
			if cnt == nil || inf == nil {
				t.Fatal("missing histogram components")
			}
			if cnt.Value != inf.Value {
				t.Fatalf("scrape %d: count %g != +Inf bucket %g", i, cnt.Value, inf.Value)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "h", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	_, count, sum := h.snapshot()
	if count != 8000 || math.Abs(sum-4000) > 1e-6 {
		t.Errorf("count=%d sum=%g, want 8000/4000", count, sum)
	}
}

// TestCodeCounterFastPath checks handle identity and the zero-alloc
// guarantee of the pre-resolved request-count path.
func TestCodeCounterFastPath(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("reqs_total", "r", "endpoint", "code")
	cc := NewCodeCounter(vec, "feed")
	if cc.Code(200) != cc.Code(200) {
		t.Fatal("Code(200) not cached")
	}
	if cc.Code(200) == cc.Code(500) {
		t.Fatal("distinct codes share a counter")
	}
	if cc.Code(200) != vec.With("feed", "200") {
		t.Fatal("fast path and vec lookup disagree")
	}
	cc.Code(200) // warm
	allocs := testing.AllocsPerRun(1000, func() {
		cc.Code(200).Inc()
	})
	if allocs != 0 {
		t.Errorf("CodeCounter steady state allocates %.1f/op, want 0", allocs)
	}
	// Out-of-range codes fall back to the locked path but still count.
	cc.Code(42).Inc()
	if vec.With("feed", "42").Value() != 1 {
		t.Error("out-of-range code lost")
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "h", []float64{0.001, 0.01, 0.1, 1})
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.02)
	})
	if allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup", "d")
	mustPanic("duplicate name", func() { reg.Counter("dup", "d") })
	mustPanic("invalid name", func() { reg.Counter("0bad", "d") })
	mustPanic("invalid label", func() { reg.CounterVec("ok_total", "d", "0bad") })
	mustPanic("bad buckets", func() { reg.Histogram("h", "d", []float64{1, 1}) })
	mustPanic("no buckets", func() { reg.Histogram("h2", "d", nil) })
	vec := reg.CounterVec("v_total", "d", "a")
	mustPanic("label arity", func() { vec.With("x", "y") })
}

func TestBucketQuantile(t *testing.T) {
	les := []float64{0.1, 0.2, 0.4, math.Inf(1)}
	cums := []uint64{10, 30, 60, 60}
	// Median rank 30 lands exactly at the 0.2 bucket boundary.
	if got := BucketQuantile(les, cums, 0.5); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("p50 = %g, want 0.2", got)
	}
	// Rank 54 sits 24/30 into the (0.2, 0.4] bucket.
	if got, want := BucketQuantile(les, cums, 0.9), 0.2+0.2*24/30; math.Abs(got-want) > 1e-9 {
		t.Errorf("p90 = %g, want %g", got, want)
	}
	// A quantile in +Inf clamps to the last finite bound.
	cums2 := []uint64{10, 30, 60, 100}
	if got := BucketQuantile(les, cums2, 0.99); got != 0.4 {
		t.Errorf("p99 in +Inf = %g, want 0.4", got)
	}
	if got := BucketQuantile(les, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("nil quantile = %g, want 0", got)
	}
}

func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("svc", newBufLogger(&buf), 10*time.Millisecond)
	id := tr.NewRequestID()
	if !ValidRequestID(id) {
		t.Errorf("minted ID %q is not valid", id)
	}
	if id2 := tr.NewRequestID(); id2 == id {
		t.Error("two minted IDs collide")
	}
	tr.Record(Span{RequestID: id, Endpoint: "feed", Status: 200, Duration: time.Millisecond})
	if buf.Len() != 0 {
		t.Errorf("fast request logged as slow: %s", buf.String())
	}
	tr.Record(Span{RequestID: id, Endpoint: "sweep", Status: 200, Duration: 50 * time.Millisecond})
	if s := buf.String(); !strings.Contains(s, "slow_request") || !strings.Contains(s, "rid="+id) || !strings.Contains(s, "endpoint=sweep") {
		t.Errorf("slow log line missing fields: %q", s)
	}
	recent := tr.Recent(10)
	if len(recent) != 2 || recent[0].Endpoint != "sweep" || recent[1].Endpoint != "feed" {
		t.Errorf("Recent wrong: %+v", recent)
	}
	if recent[0].Service != "svc" {
		t.Errorf("service not defaulted: %+v", recent[0])
	}
	if tr.Spans() != 2 {
		t.Errorf("Spans() = %d, want 2", tr.Spans())
	}
	// Ring wraps without losing the newest spans.
	for i := 0; i < 600; i++ {
		tr.Record(Span{RequestID: "x", Endpoint: "feed", Status: 200})
	}
	if got := tr.Recent(1000); len(got) != 256 {
		t.Errorf("Recent after wrap = %d spans, want 256", len(got))
	}
}

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"a", "req-1.2_3", strings.Repeat("x", 128)} {
		if !ValidRequestID(ok) {
			t.Errorf("ValidRequestID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "newline\n", strings.Repeat("x", 129), `quo"te`} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true", bad)
		}
	}
}

func TestEnsureRequestID(t *testing.T) {
	tr := NewTracer("svc", nil, 0)
	r := newRequest(t)
	id := tr.EnsureRequestID(r)
	if r.Header.Get(RequestIDHeader) != id {
		t.Error("minted ID not set on request")
	}
	if got := tr.EnsureRequestID(r); got != id {
		t.Error("second Ensure re-minted")
	}
	r2 := newRequest(t)
	r2.Header.Set(RequestIDHeader, "bad id!")
	if got := tr.EnsureRequestID(r2); got == "bad id!" {
		t.Error("invalid client ID was trusted")
	}
	r3 := newRequest(t)
	r3.Header.Set(RequestIDHeader, "client-supplied-1")
	if got := tr.EnsureRequestID(r3); got != "client-supplied-1" {
		t.Errorf("valid client ID replaced by %q", got)
	}
}
