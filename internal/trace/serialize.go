package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"repro/internal/isa"
)

// Binary trace format:
//
//	magic "P64T", u32 version
//	u32 name length, name bytes
//	u64 insts, u64 nullified, u64 branches, u64 region branches, u64 preddefs
//	u64 event count, then one 24-byte record per event:
//	    u8 kind, u8 flags, u8 guard, u8 pad, u32 pc, u64 step, u64 guardDist
//
// flags bit layout: taken, guardVal, region, guardImpliesTaken, executed,
// value, feedsBranch, feedsRegionBranch (LSB first). Little-endian.

var traceMagic = [4]byte{'P', '6', '4', 'T'}

const traceVersion = 1

const eventRecordSize = 24

const (
	fTaken = 1 << iota
	fGuardVal
	fRegion
	fGuardImpliesTaken
	fExecuted
	fValue
	fFeedsBranch
	fFeedsRegionBranch
)

func packFlags(ev *Event) byte {
	var f byte
	set := func(bit byte, v bool) {
		if v {
			f |= bit
		}
	}
	set(fTaken, ev.Taken)
	set(fGuardVal, ev.GuardVal)
	set(fRegion, ev.Region)
	set(fGuardImpliesTaken, ev.GuardImpliesTaken)
	set(fExecuted, ev.Executed)
	set(fValue, ev.Value)
	set(fFeedsBranch, ev.FeedsBranch)
	set(fFeedsRegionBranch, ev.FeedsRegionBranch)
	return f
}

func unpackFlags(ev *Event, f byte) {
	ev.Taken = f&fTaken != 0
	ev.GuardVal = f&fGuardVal != 0
	ev.Region = f&fRegion != 0
	ev.GuardImpliesTaken = f&fGuardImpliesTaken != 0
	ev.Executed = f&fExecuted != 0
	ev.Value = f&fValue != 0
	ev.FeedsBranch = f&fFeedsBranch != 0
	ev.FeedsRegionBranch = f&fFeedsRegionBranch != 0
}

// WriteTo serialises the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	cw.write(traceMagic[:])
	cw.u32(traceVersion)
	cw.u32(uint32(len(t.Name)))
	cw.write([]byte(t.Name))
	for _, v := range []uint64{t.Insts, t.Nullified, t.Branches, t.RegionBranches, t.PredDefs, uint64(len(t.Events))} {
		cw.u64(v)
	}
	var rec [eventRecordSize]byte
	for i := range t.Events {
		ev := &t.Events[i]
		rec[0] = byte(ev.Kind)
		rec[1] = packFlags(ev)
		rec[2] = byte(ev.Guard)
		rec[3] = 0
		binary.LittleEndian.PutUint32(rec[4:8], uint32(ev.PC))
		binary.LittleEndian.PutUint64(rec[8:16], ev.Step)
		binary.LittleEndian.PutUint64(rec[16:24], ev.GuardDist)
		cw.write(rec[:])
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) { return ReadTraceInto(r, nil) }

// ReadTraceInto is ReadTrace decoding into the caller's scratch event
// slice: events are appended to scratch[:0], reusing its backing array
// when the capacity suffices. The serving hot path feeds sync.Pool-ed
// buffers through it so steady-state batch decoding allocates nothing.
// The returned trace's Events aliases scratch's (possibly grown) array;
// ownership of both stays with the caller.
func ReadTraceInto(r io.Reader, scratch []Event) (*Trace, error) {
	return ReadTraceFrom(bufio.NewReader(r), scratch)
}

// ReadTraceFrom is ReadTraceInto reading through the caller's
// bufio.Reader, which must already wrap the underlying stream (Reset a
// pooled reader onto it). The serving hot path pools both the reader and
// the event scratch, so steady-state batch decoding allocates nothing;
// decoding consumes exactly the trace's bytes from the reader.
func ReadTraceFrom(br *bufio.Reader, scratch []Event) (*Trace, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var u32buf [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32buf[:]), nil
	}
	var u64buf [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64buf[:]), nil
	}

	v, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen, err := readU32()
	if err != nil || nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: bad name length (%v)", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	tr := &Trace{Name: string(name)}
	header := []*uint64{&tr.Insts, &tr.Nullified, &tr.Branches, &tr.RegionBranches, &tr.PredDefs}
	for _, dst := range header {
		if *dst, err = readU64(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	count, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	// Grow the event slice as records arrive rather than trusting the
	// declared count up front: a truncated or hostile header then fails
	// with a read error instead of a multi-gigabyte allocation.
	if cap(scratch) > 0 {
		tr.Events = scratch[:0]
	} else {
		tr.Events = make([]Event, 0, min(count, 1<<16))
	}
	var rec [eventRecordSize]byte
	for i := uint64(0); i < count; {
		// Bulk path: decode every whole record the reader already holds
		// in one Peek/Discard round, so the common case is one buffer
		// fill per ~170 records instead of a copying ReadFull per record.
		// Peek triggers a fill when fewer than one record is buffered, so
		// this also drives the underlying reads.
		if buf, _ := br.Peek(eventRecordSize); len(buf) >= eventRecordSize {
			n := br.Buffered() / eventRecordSize
			if rem := count - i; uint64(n) > rem {
				n = int(rem)
			}
			chunk, _ := br.Peek(n * eventRecordSize)
			// Grow once and decode into the final slots: a per-record
			// `var ev Event` + append would zero and then copy every
			// ~64-byte struct twice. Growth stays bounded by the bytes
			// actually buffered, so a hostile count still cannot force a
			// huge allocation.
			base := len(tr.Events)
			tr.Events = slices.Grow(tr.Events, n)[:base+n]
			for k := 0; k < n; k++ {
				// decodeRecord's body, by hand: at 110 cost units it is
				// over the inlining budget, and the call alone is ~25% of
				// a record's decode time at this loop's throughput.
				rec := chunk[k*eventRecordSize : (k+1)*eventRecordSize : (k+1)*eventRecordSize]
				ev := &tr.Events[base+k]
				ev.Kind = Kind(rec[0])
				unpackFlags(ev, rec[1])
				ev.Guard = isa.PReg(rec[2])
				ev.PC = uint64(binary.LittleEndian.Uint32(rec[4:8]))
				ev.Step = binary.LittleEndian.Uint64(rec[8:16])
				ev.GuardDist = binary.LittleEndian.Uint64(rec[16:24])
			}
			br.Discard(n * eventRecordSize)
			i += uint64(n)
			continue
		}
		// A record straddling the buffer tail of a short fill: fall back
		// to a blocking whole-record read, which also shapes truncation
		// errors exactly as the per-record loop did (io.EOF at a record
		// boundary, io.ErrUnexpectedEOF mid-record).
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		var ev Event
		decodeRecord(&ev, rec[:])
		tr.Events = append(tr.Events, ev)
		i++
	}
	return tr, nil
}

// decodeRecord unpacks one fixed-size event record.
func decodeRecord(ev *Event, rec []byte) {
	ev.Kind = Kind(rec[0])
	unpackFlags(ev, rec[1])
	ev.Guard = isa.PReg(rec[2])
	ev.PC = uint64(binary.LittleEndian.Uint32(rec[4:8]))
	ev.Step = binary.LittleEndian.Uint64(rec[8:16])
	ev.GuardDist = binary.LittleEndian.Uint64(rec[16:24])
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *countWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}

func (c *countWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}
