// External test package: workload (imported for real programs) now
// resolves synthetic charz workloads, and charz consumes this package —
// an in-package test would close an import cycle.
package trace_test

import (
	"testing"

	"repro/internal/ifconv"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

func collect(t *testing.T, p *prog.Program) *trace.Trace {
	t.Helper()
	tr, err := trace.Collect(p, 1_000_000)
	if err != nil {
		t.Fatalf("collect %s: %v", p.Name, err)
	}
	return tr
}

func TestCollectCountsBranches(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 3)
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.Subi(1, 1, 1)
	})
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	// The while loop runs 3 iterations + 1 failing test: 4 conditional
	// branch events and 4 compares. The back-edge br is unconditional and
	// must not appear.
	if tr.Branches != 4 {
		t.Errorf("branches = %d, want 4", tr.Branches)
	}
	if tr.PredDefs != 4 {
		t.Errorf("preddefs = %d, want 4", tr.PredDefs)
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Kind == trace.KindBranch && ev.Guard == isa.P0 {
			t.Errorf("unconditional branch recorded: %+v", ev)
		}
	}
}

func TestCollectTakenMatchesOutcome(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 1) // p2 true
	b.BrIf(2, "x")
	b.Label("x")
	b.Cmpi(isa.CmpEQ, 4, 5, 1, 0) // p4 false
	b.BrIf(4, "y")
	b.Label("y")
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	var branches []trace.Event
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindBranch {
			branches = append(branches, ev)
		}
	}
	if len(branches) != 2 {
		t.Fatalf("got %d branch events", len(branches))
	}
	if !branches[0].Taken || !branches[0].GuardVal {
		t.Errorf("first branch: %+v", branches[0])
	}
	if branches[1].Taken || branches[1].GuardVal {
		t.Errorf("second branch: %+v", branches[1])
	}
}

func TestGuardDist(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)                  // step 0
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 1) // step 1: defines p2
	b.Nopn(4)
	b.BrIf(2, "x") // step 6: dist = 6-1 = 5
	b.Label("x")
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindBranch {
			if ev.GuardDist != 5 {
				t.Errorf("GuardDist = %d, want 5", ev.GuardDist)
			}
			return
		}
	}
	t.Fatal("no branch event")
}

func TestStepsMonotonic(t *testing.T) {
	p := workload.Synth(3, 60)
	tr := collect(t, p)
	var last uint64
	for i, ev := range tr.Events {
		if i > 0 && ev.Step <= last {
			t.Fatalf("event %d step %d not after %d", i, ev.Step, last)
		}
		last = ev.Step
	}
	if tr.Insts == 0 || tr.Insts < last {
		t.Errorf("Insts = %d, last step %d", tr.Insts, last)
	}
}

func TestCloopEventsAreConditional(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 2)
	b.Label("top")
	b.Addi(2, 2, 1)
	b.Cloop(1, "top")
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindBranch {
			n++
			if ev.GuardImpliesTaken {
				t.Error("cloop marked guard-implies-taken")
			}
		}
	}
	if n != 3 {
		t.Errorf("cloop events = %d, want 3", n)
	}
}

func TestRegionFlagsAfterIfConversion(t *testing.T) {
	b := prog.NewBuilder("loop")
	b.Movi(1, 10)
	b.Movi(2, 0)
	b.While(prog.RI(isa.CmpGT, 1, 0), func() {
		b.IfElse(prog.RI(isa.CmpGT, 1, 5),
			func() { b.Add(2, 2, 1) },
			func() { b.Sub(2, 2, 1) },
		)
		b.Subi(1, 1, 1)
	})
	b.Out(2)
	b.Halt(0)
	p := b.MustProgram()
	cp, rep, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regions) == 0 {
		t.Fatalf("nothing converted: %v", rep.Rejected)
	}
	tr := collect(t, cp)
	if tr.RegionBranches == 0 {
		t.Errorf("no region branch events in converted trace\n%s", cp)
	}
	// Dynamic branch count should drop after if-conversion.
	tr0 := collect(t, p)
	if tr.Branches >= tr0.Branches {
		t.Errorf("branches did not drop: %d -> %d", tr0.Branches, tr.Branches)
	}
}

func TestFeedsBranchClassification(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Movi(1, 1)
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 1) // p2 guards a branch below
	b.Cmpi(isa.CmpEQ, 4, 5, 1, 0) // p4/p5 guard nothing
	b.BrIf(2, "x")
	b.Label("x")
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	var defs []trace.Event
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindPredDef {
			defs = append(defs, ev)
		}
	}
	if len(defs) != 2 {
		t.Fatalf("defs = %d", len(defs))
	}
	if !defs[0].FeedsBranch {
		t.Error("branch-feeding compare not flagged")
	}
	if defs[1].FeedsBranch {
		t.Error("non-feeding compare flagged")
	}
}

func TestNullifiedCompareNotExecuted(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Emit(isa.Inst{Op: isa.OpPinit, PD1: 9, Imm: 0})
	b.Cmpi(isa.CmpEQ, 2, 3, 1, 0).QP = 9 // nullified
	b.Halt(0)
	tr := collect(t, b.MustProgram())
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindPredDef && ev.Executed {
			t.Errorf("nullified compare marked executed: %+v", ev)
		}
	}
	if tr.PredDefs != 1 {
		t.Errorf("preddefs = %d", tr.PredDefs)
	}
}

func TestCollectLimit(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Label("x")
	b.Br("x")
	if _, err := trace.Collect(b.MustProgram(), 50); err == nil {
		t.Fatal("infinite loop did not hit the limit")
	}
}
