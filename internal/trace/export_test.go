package trace

// VersionForTest exposes the serialization version to the external test
// package (which lives outside the package to break an import cycle
// through workload).
const VersionForTest = traceVersion
