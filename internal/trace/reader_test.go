package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func testEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		if i%3 == 2 {
			evs[i] = Event{Kind: KindPredDef, Step: uint64(i), PC: uint64(i % 17), Executed: true, Value: i%2 == 0}
		} else {
			evs[i] = Event{Kind: KindBranch, Step: uint64(i), PC: uint64(i % 31), Taken: i%2 == 1, GuardDist: uint64(i % 7)}
		}
	}
	return evs
}

// TestNextBatchDrainsTrace checks that NextBatch views concatenate to
// exactly the trace's event sequence, respect the max, and interoperate
// with per-event Next calls on the same cursor.
func TestNextBatchDrainsTrace(t *testing.T) {
	tr := &Trace{Name: "t", Events: testEvents(100)}
	r := tr.Replay().(BatchReader)

	// Mixed consumption: a few Next calls, then batches of awkward size.
	var got []Event
	var ev Event
	for i := 0; i < 3 && r.Next(&ev); i++ {
		got = append(got, ev)
	}
	for {
		b := r.NextBatch(7)
		if len(b) == 0 {
			break
		}
		if len(b) > 7 {
			t.Fatalf("NextBatch(7) returned %d events", len(b))
		}
		got = append(got, b...)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("mixed Next/NextBatch consumption did not reproduce the event sequence")
	}
	if b := r.NextBatch(7); len(b) != 0 {
		t.Fatalf("drained reader returned a %d-event batch", len(b))
	}
	if r.Err() != nil {
		t.Fatalf("slice reader reported error: %v", r.Err())
	}
}

// TestNextBatchIsView checks the zero-copy contract: the returned batch
// aliases the trace's event storage.
func TestNextBatchIsView(t *testing.T) {
	tr := &Trace{Name: "t", Events: testEvents(10)}
	r := tr.Replay().(BatchReader)
	b := r.NextBatch(4)
	if len(b) != 4 {
		t.Fatalf("got %d events, want 4", len(b))
	}
	if &b[0] != &tr.Events[0] {
		t.Error("NextBatch copied events instead of returning a view")
	}
}

// TestReadTraceInto checks scratch-buffer decoding: the result matches
// ReadTrace, a sufficient scratch's backing array is reused, and decoding
// into a recycled buffer allocates no new event storage.
func TestReadTraceInto(t *testing.T) {
	tr := &Trace{
		Name: "serialize-into", Events: testEvents(257),
		Insts: 4096, Nullified: 12, Branches: 171, RegionBranches: 3, PredDefs: 86,
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	plain, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]Event, 0, 512)
	into, err := ReadTraceInto(bytes.NewReader(raw), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, into) {
		t.Fatal("ReadTraceInto decoded a different trace than ReadTrace")
	}
	if &into.Events[0] != &scratch[:1][0] {
		t.Error("sufficient scratch capacity was not reused")
	}

	// Recycling the (possibly grown) slice must keep the same storage.
	again, err := ReadTraceInto(bytes.NewReader(raw), into.Events[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &again.Events[0] != &into.Events[0] {
		t.Error("recycled buffer was reallocated on second decode")
	}
	if !reflect.DeepEqual(again.Events, plain.Events) {
		t.Fatal("second decode into recycled buffer diverged")
	}
}
