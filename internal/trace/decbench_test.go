package trace

import (
	"bytes"
	"testing"
)

// BenchmarkDecode8K decodes one serving-sized batch (8192 events, the
// bpservd default) through the pooled-scratch path, tracking the decode
// cost the HTTP feed handler pays per request.
func BenchmarkDecode8K(b *testing.B) {
	var evs []Event
	for i := 0; i < 8192; i++ {
		evs = append(evs, Event{Kind: KindBranch, PC: uint64(i % 512), Taken: i%3 == 0})
	}
	var buf bytes.Buffer
	tr := &Trace{Name: "bench", Events: evs}
	tr.WriteTo(&buf)
	payload := buf.Bytes()
	scratch := make([]Event, 0, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr2, err := ReadTraceInto(bytes.NewReader(payload), scratch)
		if err != nil {
			b.Fatal(err)
		}
		scratch = tr2.Events[:0]
	}
	b.SetBytes(int64(len(payload)))
}
