// External test package: workload (imported for real programs) now
// resolves synthetic charz workloads, and charz consumes this package —
// an in-package test would close an import cycle.
package trace_test

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestStreamMatchesCollect replays every workload both ways — streamed
// straight off the emulator and via the materialized trace — and
// requires identical event streams and counts.
func TestStreamMatchesCollect(t *testing.T) {
	for _, w := range workload.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build()
			tr, err := trace.Collect(p, 3_000_000)
			if err != nil {
				t.Fatal(err)
			}
			r := trace.Stream(p, 3_000_000).Replay()
			var ev trace.Event
			i := 0
			for r.Next(&ev) {
				if i >= len(tr.Events) {
					t.Fatalf("stream produced extra event %d: %+v", i, ev)
				}
				if ev != tr.Events[i] {
					t.Fatalf("event %d differs:\nstream:  %+v\ncollect: %+v", i, ev, tr.Events[i])
				}
				i++
			}
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(tr.Events) {
				t.Fatalf("stream stopped after %d of %d events", i, len(tr.Events))
			}
			if got, want := r.Counts(), tr.Counts(); got != want {
				t.Errorf("counts differ: stream %+v, collect %+v", got, want)
			}
		})
	}
}

// TestStreamReplaysAreIndependent drains two readers from one Source
// interleaved; each must see the full stream.
func TestStreamReplaysAreIndependent(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	src := trace.Stream(p, 0)
	a, b := src.Replay(), src.Replay()
	var ea, eb trace.Event
	na, nb := 0, 0
	for {
		oka := a.Next(&ea)
		okb := b.Next(&eb)
		if oka != okb {
			t.Fatalf("readers diverged after %d/%d events", na, nb)
		}
		if !oka {
			break
		}
		if ea != eb {
			t.Fatalf("event %d differs between replays", na)
		}
		na++
		nb++
	}
	if na == 0 {
		t.Fatal("empty stream")
	}
}

// TestStreamLimit surfaces the emulator step limit as a reader error.
func TestStreamLimit(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	r := trace.Stream(p, 10).Replay()
	var ev trace.Event
	for r.Next(&ev) {
	}
	if r.Err() == nil {
		t.Fatal("limit not reported")
	}
}

// TestTraceReplayCursor checks the slice-backed reader against direct
// slice iteration.
func TestTraceReplayCursor(t *testing.T) {
	p := workload.ByNameMust("bsearch").Build()
	tr, err := trace.Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Replay()
	var ev trace.Event
	for i := 0; r.Next(&ev); i++ {
		if ev != tr.Events[i] {
			t.Fatalf("replay event %d differs", i)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Counts() != tr.Counts() {
		t.Errorf("counts differ")
	}
}

// TestStreamErrorIsSticky: once the emulator reader hits its step limit,
// further Next calls keep returning false and Err keeps returning the
// same error — a consumer that polls after failure can never see a
// phantom recovery or a silently short replay.
func TestStreamErrorIsSticky(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	r := trace.Stream(p, 10).Replay()
	var ev trace.Event
	for r.Next(&ev) {
	}
	first := r.Err()
	if first == nil {
		t.Fatal("limit not reported")
	}
	for i := 0; i < 3; i++ {
		if r.Next(&ev) {
			t.Fatal("Next succeeded after a terminal error")
		}
		if got := r.Err(); got != first {
			t.Fatalf("error changed across polls: %v then %v", first, got)
		}
	}
}

// TestStreamLimitNotSilentlyShort: a limited stream must not masquerade
// as a complete one. The events it did produce match the full trace's
// prefix, and the failure is visible in Err — so any consumer that
// checks Err (as core.EvaluateStream does) cannot mistake the truncation
// for a short program.
func TestStreamLimitNotSilentlyShort(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	full, err := trace.Collect(p, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r := trace.Stream(workload.ByNameMust("scan").Build(), 1000).Replay()
	var ev trace.Event
	n := 0
	for r.Next(&ev) {
		if ev != full.Events[n] {
			t.Fatalf("limited stream event %d diverges from full trace", n)
		}
		n++
	}
	if r.Err() == nil && n != len(full.Events) {
		t.Fatalf("stream stopped at %d of %d events with nil Err", n, len(full.Events))
	}
}
