// Package trace captures branch and predicate-define event streams from
// emulated program runs. Trace-driven simulation over these events is how
// the predictor experiments run (fast, repeatable), mirroring the paper's
// trace-driven methodology; the cycle-level model in internal/pipeline
// provides the timing view.
package trace

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Kind distinguishes event types.
type Kind uint8

// Event kinds.
const (
	// KindBranch is a conditional branch: a guarded br/brl or a cloop.
	// Unconditional (p0-guarded) branches are not direction-prediction
	// events and are not recorded.
	KindBranch Kind = iota
	// KindPredDef is a compare instruction (the predicate defines the
	// predicate global update mechanism feeds on).
	KindPredDef
)

// Event is one dynamic branch or predicate-define occurrence.
type Event struct {
	Kind Kind
	Step uint64 // dynamic instruction number at which the event fetched
	PC   uint64 // static instruction index

	// Branch fields.
	Taken    bool
	Guard    isa.PReg
	GuardVal bool
	// GuardDist is the number of dynamic instructions since the guard
	// predicate was last written. The squash false path filter can act on
	// a branch only if this distance covers the predicate resolve latency.
	GuardDist uint64
	// Region marks region-based branches (branches the if-converter left
	// inside predicated regions).
	Region bool
	// GuardImpliesTaken is true for br/brl (taken iff guard true) and
	// false for cloop (a true guard still tests its counter).
	GuardImpliesTaken bool

	// Predicate-define fields.
	Executed          bool // the compare's own guard was true
	Value             bool // evaluated condition (meaningful when Executed)
	FeedsBranch       bool // statically feeds some branch guard
	FeedsRegionBranch bool // statically feeds some region-based branch guard
}

// Trace is an ordered event stream plus run-level counts.
type Trace struct {
	Name           string
	Events         []Event
	Insts          uint64 // total dynamic instructions
	Nullified      uint64 // dynamic instructions nullified by a false guard
	Branches       uint64 // conditional branch events
	RegionBranches uint64
	PredDefs       uint64
}

// Collect runs the program to completion and records its event stream.
// It materializes the same stream Stream produces, for traces that are
// replayed many times across a predictor sweep.
func Collect(p *prog.Program, limit uint64) (*Trace, error) {
	r := newEmuReader(p, limit)
	tr := &Trace{Name: p.Name}
	var ev Event
	for r.Next(&ev) {
		tr.Events = append(tr.Events, ev)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	c := r.Counts()
	tr.Insts = c.Insts
	tr.Nullified = c.Nullified
	tr.Branches = c.Branches
	tr.RegionBranches = c.RegionBranches
	tr.PredDefs = c.PredDefs
	return tr, nil
}
