// Package trace captures branch and predicate-define event streams from
// emulated program runs. Trace-driven simulation over these events is how
// the predictor experiments run (fast, repeatable), mirroring the paper's
// trace-driven methodology; the cycle-level model in internal/pipeline
// provides the timing view.
package trace

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Kind distinguishes event types.
type Kind uint8

// Event kinds.
const (
	// KindBranch is a conditional branch: a guarded br/brl or a cloop.
	// Unconditional (p0-guarded) branches are not direction-prediction
	// events and are not recorded.
	KindBranch Kind = iota
	// KindPredDef is a compare instruction (the predicate defines the
	// predicate global update mechanism feeds on).
	KindPredDef
)

// Event is one dynamic branch or predicate-define occurrence.
type Event struct {
	Kind Kind
	Step uint64 // dynamic instruction number at which the event fetched
	PC   uint64 // static instruction index

	// Branch fields.
	Taken    bool
	Guard    isa.PReg
	GuardVal bool
	// GuardDist is the number of dynamic instructions since the guard
	// predicate was last written. The squash false path filter can act on
	// a branch only if this distance covers the predicate resolve latency.
	GuardDist uint64
	// Region marks region-based branches (branches the if-converter left
	// inside predicated regions).
	Region bool
	// GuardImpliesTaken is true for br/brl (taken iff guard true) and
	// false for cloop (a true guard still tests its counter).
	GuardImpliesTaken bool

	// Predicate-define fields.
	Executed          bool // the compare's own guard was true
	Value             bool // evaluated condition (meaningful when Executed)
	FeedsBranch       bool // statically feeds some branch guard
	FeedsRegionBranch bool // statically feeds some region-based branch guard
}

// Trace is an ordered event stream plus run-level counts.
type Trace struct {
	Name           string
	Events         []Event
	Insts          uint64 // total dynamic instructions
	Nullified      uint64 // dynamic instructions nullified by a false guard
	Branches       uint64 // conditional branch events
	RegionBranches uint64
	PredDefs       uint64
}

// Collect runs the program to completion and records its event stream.
func Collect(p *prog.Program, limit uint64) (*Trace, error) {
	m, err := emu.New(p)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Name: p.Name}

	// Static classification: which predicate registers guard branches and
	// region-based branches, and hence which compares feed them. Predicate
	// register reuse makes this conservative-approximate, as a hardware or
	// compiler-table implementation would be.
	var branchGuards, regionGuards uint64
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsBranch() && in.QP != isa.P0 {
			branchGuards |= 1 << in.QP
			if in.Region {
				regionGuards |= 1 << in.QP
			}
		}
	}

	var lastDef [isa.NumPRegs]uint64
	for !m.Halted {
		if limit > 0 && m.Steps >= limit {
			return nil, fmt.Errorf("trace: %w (%d steps in %s)", emu.ErrLimit, m.Steps, p.Name)
		}
		step := m.Steps // dynamic number of the instruction about to run
		si, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		in := si.Inst
		switch {
		case in.Op == isa.OpCmp:
			ev := Event{
				Kind:              KindPredDef,
				Step:              step,
				PC:                uint64(si.Index),
				Executed:          si.GuardTrue,
				Value:             si.CmpValue,
				FeedsBranch:       branchGuards&(1<<in.PD1|1<<in.PD2) != 0,
				FeedsRegionBranch: regionGuards&(1<<in.PD1|1<<in.PD2) != 0,
			}
			tr.Events = append(tr.Events, ev)
			tr.PredDefs++
		case (in.Op == isa.OpBr || in.Op == isa.OpBrl) && in.QP != isa.P0,
			in.Op == isa.OpCloop:
			ev := Event{
				Kind:              KindBranch,
				Step:              step,
				PC:                uint64(si.Index),
				Taken:             si.Taken,
				Guard:             in.QP,
				GuardVal:          si.GuardTrue,
				GuardDist:         step - lastDef[in.QP],
				Region:            in.Region,
				GuardImpliesTaken: in.Op != isa.OpCloop,
			}
			tr.Events = append(tr.Events, ev)
			tr.Branches++
			if in.Region {
				tr.RegionBranches++
			}
		}
		for _, w := range si.PredWrites {
			lastDef[w.P] = step
		}
	}
	tr.Insts = m.Steps
	tr.Nullified = m.Nullified
	return tr, nil
}
