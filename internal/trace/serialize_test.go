package trace

import (
	"bytes"
	"testing"

	"repro/internal/ifconv"
	"repro/internal/workload"
)

func TestTraceRoundTrip(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Collect(cp, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Insts != tr.Insts || back.Nullified != tr.Nullified ||
		back.Branches != tr.Branches || back.RegionBranches != tr.RegionBranches ||
		back.PredDefs != tr.PredDefs {
		t.Fatalf("header mismatch: %+v vs %+v", back, tr)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated valid prefix.
	p := workload.ByNameMust("stream").Build()
	tr, err := Collect(p, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}
