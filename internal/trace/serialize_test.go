// External test package: workload (imported for real programs) now
// resolves synthetic charz workloads, and charz consumes this package —
// an in-package test would close an import cycle.
package trace_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/ifconv"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTraceRoundTrip(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(cp, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Insts != tr.Insts || back.Nullified != tr.Nullified ||
		back.Branches != tr.Branches || back.RegionBranches != tr.RegionBranches ||
		back.PredDefs != tr.PredDefs {
		t.Fatalf("header mismatch: %+v vs %+v", back, tr)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := trace.ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := trace.ReadTrace(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated valid prefix.
	p := workload.ByNameMust("stream").Build()
	tr, err := trace.Collect(p, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := trace.ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

// TestReadTraceTruncationSweep serializes a small trace and feeds the
// deserializer every strict prefix: each one must produce an error, never
// a silently short trace.
func TestReadTraceTruncationSweep(t *testing.T) {
	p := workload.ByNameMust("scan").Build()
	cp, _, err := ifconv.Convert(p, ifconv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(cp, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the sweep cheap: a handful of events is enough to cover the
	// magic, version, name, header and record regions byte by byte.
	tr.Events = tr.Events[:8]
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if got, err := trace.ReadTrace(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted: %+v", n, len(full), got)
		}
	}
	if _, err := trace.ReadTrace(bytes.NewReader(full)); err != nil {
		t.Fatalf("full serialization rejected: %v", err)
	}
}

// corruptHeader builds serialized-trace bytes with a chosen version and
// declared event count and no event payload at all.
func corruptHeader(version uint32, count uint64) []byte {
	var buf bytes.Buffer
	buf.Write([]byte("P64T"))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], version)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], 0) // empty name
	buf.Write(u32[:])
	var u64 [8]byte
	for i := 0; i < 5; i++ { // insts .. preddefs
		binary.LittleEndian.PutUint64(u64[:], 1)
		buf.Write(u64[:])
	}
	binary.LittleEndian.PutUint64(u64[:], count)
	buf.Write(u64[:])
	return buf.Bytes()
}

func TestReadTraceRejectsBadVersion(t *testing.T) {
	if _, err := trace.ReadTrace(bytes.NewReader(corruptHeader(trace.VersionForTest+1, 0))); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReadTraceRejectsImplausibleCount(t *testing.T) {
	if _, err := trace.ReadTrace(bytes.NewReader(corruptHeader(trace.VersionForTest, 1<<40))); err == nil {
		t.Fatal("implausible event count accepted")
	}
}

// TestReadTraceLargeCountNoData declares a huge (but plausible) event
// count with zero payload bytes: the reader must fail on the first
// missing record instead of allocating the declared count up front.
func TestReadTraceLargeCountNoData(t *testing.T) {
	if _, err := trace.ReadTrace(bytes.NewReader(corruptHeader(trace.VersionForTest, 1<<31))); err == nil {
		t.Fatal("eventless trace with huge declared count accepted")
	}
}

func TestReadTraceRejectsHugeNameLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("P64T"))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], trace.VersionForTest)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], 1<<24) // name length over the cap
	buf.Write(u32[:])
	if _, err := trace.ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("oversized name length accepted")
	}
}
