package trace

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Stream returns a Source that replays p's event stream straight from
// the emulator: each Replay runs the program again, producing events as
// the emulation advances instead of materializing an []Event slice.
// Use it when a trace is consumed once (memory stays flat regardless of
// run length); use Collect when the same trace is replayed across a
// predictor sweep.
func Stream(p *prog.Program, limit uint64) Source { return &streamSource{p: p, limit: limit} }

type streamSource struct {
	p     *prog.Program
	limit uint64
}

// Replay implements Source.
func (s *streamSource) Replay() Reader { return newEmuReader(s.p, s.limit) }

// emuReader derives the event stream incrementally from a live emulator.
type emuReader struct {
	p     *prog.Program
	m     *emu.Machine
	limit uint64
	err   error
	done  bool

	// Static classification: which predicate registers guard branches and
	// region-based branches, and hence which compares feed them. Predicate
	// register reuse makes this conservative-approximate, as a hardware or
	// compiler-table implementation would be.
	branchGuards uint64
	regionGuards uint64

	lastDef [isa.NumPRegs]uint64
	counts  Counts
}

func newEmuReader(p *prog.Program, limit uint64) *emuReader {
	r := &emuReader{p: p, limit: limit}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsBranch() && in.QP != isa.P0 {
			r.branchGuards |= 1 << in.QP
			if in.Region {
				r.regionGuards |= 1 << in.QP
			}
		}
	}
	r.m, r.err = emu.New(p)
	return r
}

// Next implements Reader: it steps the emulator until the next
// event-producing instruction (compare or conditional branch) or the end
// of the run.
func (r *emuReader) Next(ev *Event) bool {
	if r.err != nil || r.done {
		return false
	}
	for !r.m.Halted {
		if r.limit > 0 && r.m.Steps >= r.limit {
			r.err = fmt.Errorf("trace: %w (%d steps in %s)", emu.ErrLimit, r.m.Steps, r.p.Name)
			return false
		}
		step := r.m.Steps // dynamic number of the instruction about to run
		si, err := r.m.Step()
		if err != nil {
			r.err = fmt.Errorf("trace: %w", err)
			return false
		}
		in := si.Inst
		emitted := false
		switch {
		case in.Op == isa.OpCmp:
			*ev = Event{
				Kind:              KindPredDef,
				Step:              step,
				PC:                uint64(si.Index),
				Executed:          si.GuardTrue,
				Value:             si.CmpValue,
				FeedsBranch:       r.branchGuards&(1<<in.PD1|1<<in.PD2) != 0,
				FeedsRegionBranch: r.regionGuards&(1<<in.PD1|1<<in.PD2) != 0,
			}
			r.counts.PredDefs++
			emitted = true
		case (in.Op == isa.OpBr || in.Op == isa.OpBrl) && in.QP != isa.P0,
			in.Op == isa.OpCloop:
			*ev = Event{
				Kind:              KindBranch,
				Step:              step,
				PC:                uint64(si.Index),
				Taken:             si.Taken,
				Guard:             in.QP,
				GuardVal:          si.GuardTrue,
				GuardDist:         step - r.lastDef[in.QP],
				Region:            in.Region,
				GuardImpliesTaken: in.Op != isa.OpCloop,
			}
			r.counts.Branches++
			if in.Region {
				r.counts.RegionBranches++
			}
			emitted = true
		}
		for _, w := range si.PredWrites {
			r.lastDef[w.P] = step
		}
		if emitted {
			return true
		}
	}
	r.done = true
	r.counts.Insts = r.m.Steps
	r.counts.Nullified = r.m.Nullified
	return false
}

// Err implements Reader.
func (r *emuReader) Err() error { return r.err }

// Counts implements Reader; totals are complete once Next returned false
// with a nil Err.
func (r *emuReader) Counts() Counts {
	if !r.done && r.err == nil && r.m != nil {
		r.counts.Insts = r.m.Steps
		r.counts.Nullified = r.m.Nullified
	}
	return r.counts
}

var (
	_ Source = (*streamSource)(nil)
	_ Reader = (*emuReader)(nil)
)
