package trace

// Counts are the run-level totals of an event stream. For a streaming
// reader they are complete only once the stream is drained.
type Counts struct {
	Insts          uint64 // total dynamic instructions
	Nullified      uint64 // dynamic instructions nullified by a false guard
	Branches       uint64 // conditional branch events
	RegionBranches uint64
	PredDefs       uint64
}

// Reader streams branch/predicate-define events in dynamic order. It is
// the evaluation engine's view of a trace: core.Evaluate consumes
// Readers, so a predictor sweep can replay either a materialized Trace
// or a live emulator run (Stream) through the same code path.
//
// A Reader is single-use and not safe for concurrent use; obtain one per
// replay from a Source.
type Reader interface {
	// Next fills ev with the next event and reports whether one existed.
	// After it returns false, check Err.
	Next(ev *Event) bool
	// Err returns the error that terminated the stream early, if any.
	Err() error
	// Counts returns the run-level totals seen so far; complete once
	// Next has returned false with a nil Err.
	Counts() Counts
}

// BatchReader is an optional Reader extension for readers that can hand
// out contiguous event batches without per-event copying. The evaluation
// engine's batch fast path prefers it: a materialized trace replays as
// zero-copy views into its event slice instead of one Next call (and one
// 88-byte struct copy) per event.
type BatchReader interface {
	Reader
	// NextBatch returns the next up-to-max events, or an empty slice once
	// the stream is drained. The returned slice is a read-only view valid
	// until the next call on the reader; callers must not modify or
	// retain it.
	NextBatch(max int) []Event
}

// Source yields independent replay Readers over the same underlying
// event stream. Both the in-memory Trace and the emulator-backed Stream
// are Sources; concurrent sweep jobs each call Replay to get their own
// cursor, which is what makes sharing one collected trace across a
// parallel sweep safe.
type Source interface {
	Replay() Reader
}

// Replay implements Source: a lightweight cursor over the materialized
// events. Creating many replays shares the one event slice.
func (t *Trace) Replay() Reader { return &sliceReader{t: t} }

// Counts returns the trace's run-level totals.
func (t *Trace) Counts() Counts {
	return Counts{
		Insts:          t.Insts,
		Nullified:      t.Nullified,
		Branches:       t.Branches,
		RegionBranches: t.RegionBranches,
		PredDefs:       t.PredDefs,
	}
}

// sliceReader cursors over a Trace's event slice.
type sliceReader struct {
	t *Trace
	i int
}

func (r *sliceReader) Next(ev *Event) bool {
	if r.i >= len(r.t.Events) {
		return false
	}
	*ev = r.t.Events[r.i]
	r.i++
	return true
}

// NextBatch implements BatchReader: the returned batch is a direct view
// into the trace's event slice, shared (read-only) with every other
// concurrent replay cursor.
func (r *sliceReader) NextBatch(max int) []Event {
	n := len(r.t.Events) - r.i
	if n <= 0 {
		return nil
	}
	if n > max {
		n = max
	}
	b := r.t.Events[r.i : r.i+n]
	r.i += n
	return b
}

func (r *sliceReader) Err() error { return nil }

func (r *sliceReader) Counts() Counts { return r.t.Counts() }

var (
	_ Source      = (*Trace)(nil)
	_ BatchReader = (*sliceReader)(nil)
)
