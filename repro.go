// Package repro is the public API of this reproduction of
// "Incorporating Predicate Information into Branch Predictors"
// (Simon, Calder, Ferrante — HPCA-9, 2003).
//
// It re-exports the full stack: the P64 predicated ISA and its assembler,
// the program builder, the functional emulator, the if-conversion
// (hyperblock) compiler pass, the branch predictor library, the paper's
// two mechanisms — the squash false path filter (SFPF) and the predicate
// global update (PGU) predictor — the trace-driven evaluator, the
// cycle-level pipeline model, the workload suite, and the experiment
// harness that regenerates every reconstructed table and figure.
//
// Quick start:
//
//	p := repro.MustWorkload("scan").Build()          // branching code
//	cp, rep, _ := repro.IfConvert(p, repro.IfConvConfig{})
//	tr, _ := repro.CollectTrace(cp, 0)
//	m := repro.Evaluate(tr, repro.EvalConfig{
//	        Predictor:    repro.NewGShare(12, 8),
//	        UseSFPF:      true,
//	        ResolveDelay: repro.DefaultResolveDelay,
//	        PGU:          repro.PGUAll,
//	        PGUDelay:     repro.DefaultPGUDelay,
//	})
//	fmt.Printf("misprediction rate %.2f%%\n", 100*m.MispredictRate())
package repro

import (
	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/harness"
	"repro/internal/ifconv"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core program and ISA types.
type (
	// Program is a P64 program: instructions, labels, initial data.
	Program = prog.Program
	// Builder constructs programs, with structured If/IfElse/While helpers.
	Builder = prog.Builder
	// Cond is a compare condition for the structured builder helpers.
	Cond = prog.Cond
	// Machine is the P64 architectural emulator.
	Machine = emu.Machine
	// RunResult summarises a completed emulation.
	RunResult = emu.Result
)

// Compiler types.
type (
	// IfConvConfig controls hyperblock formation.
	IfConvConfig = ifconv.Config
	// IfConvReport describes what the if-converter did.
	IfConvReport = ifconv.Report
	// Profile is an execution profile for profile-guided if-conversion.
	Profile = profile.Profile
)

// Predictor and mechanism types.
type (
	// Predictor is a branch direction predictor.
	Predictor = bpred.Predictor
	// HistoryObserver is a predictor with an open global history (the PGU
	// insertion point).
	HistoryObserver = bpred.HistoryObserver
	// SFPF is the squash false path filter.
	SFPF = core.SFPF
	// PGUPolicy selects which predicate defines update the history.
	PGUPolicy = core.PGUPolicy
	// EvalConfig configures trace-driven evaluation.
	EvalConfig = core.EvalConfig
	// Evaluator is the incremental trace-driven evaluator: feed events
	// one at a time (Feed) or through the devirtualized batch fast path
	// (FeedBatch) and read metrics between feeds.
	Evaluator = core.Evaluator
	// Metrics is the result of a trace-driven evaluation.
	Metrics = core.Metrics
	// Trace is an event stream captured from an emulated run.
	Trace = trace.Trace
	// TraceEvent is one branch or predicate-define event.
	TraceEvent = trace.Event
)

// Pipeline types.
type (
	// PipelineConfig parameterises the in-order timing model.
	PipelineConfig = pipeline.Config
	// PipelineStats is a timing run result.
	PipelineStats = pipeline.Stats
)

// Workload and harness types.
type (
	// Workload is a named deterministic benchmark.
	Workload = workload.Workload
	// Experiment regenerates one reconstructed paper table/figure.
	Experiment = harness.Experiment
	// ExperimentConfig controls experiment runs.
	ExperimentConfig = harness.Config
	// ExperimentResult pairs an experiment with its tables.
	ExperimentResult = harness.Result
	// Suite is the prepared workload set experiments share.
	Suite = harness.Suite
	// Table is a renderable result table (text, markdown, CSV).
	Table = stats.Table
)

// PGU insertion policies.
const (
	PGUOff          = core.PGUOff
	PGURegionGuards = core.PGURegionGuards
	PGUBranchGuards = core.PGUBranchGuards
	PGUAll          = core.PGUAll
)

// Default mechanism timing parameters.
const (
	DefaultResolveDelay = core.DefaultResolveDelay
	DefaultPGUDelay     = core.DefaultPGUDelay
)

// NewBuilder returns a program builder.
func NewBuilder(name string) *Builder { return prog.NewBuilder(name) }

// NewMachine builds an emulator for a program.
func NewMachine(p *Program) (*Machine, error) { return emu.New(p) }

// Run executes a program to completion on the functional emulator.
func Run(p *Program, limit uint64) (RunResult, error) { return emu.RunProgram(p, limit) }

// IfConvert applies hyperblock if-conversion to a program.
func IfConvert(p *Program, cfg IfConvConfig) (*Program, *IfConvReport, error) {
	return ifconv.Convert(p, cfg)
}

// CompilePCL compiles PCL source (a small C-like language; see
// internal/lang for the grammar) into a P64 program — the front half of
// the toolchain whose back half is IfConvert.
func CompilePCL(name, src string) (*Program, error) { return lang.Compile(name, src) }

// CollectProfile gathers an execution profile for profile-guided
// if-conversion (set it as IfConvConfig.Profile). A nil predictor
// defaults to gshare 12/8.
func CollectProfile(p *Program, pred Predictor, limit uint64) (*Profile, error) {
	return profile.Collect(p, pred, limit)
}

// CollectTrace runs a program and captures its branch/predicate-define
// event stream. A limit of 0 applies no step bound.
func CollectTrace(p *Program, limit uint64) (*Trace, error) {
	return trace.Collect(p, limit)
}

// Evaluate replays a trace through a predictor with the configured paper
// mechanisms.
func Evaluate(tr *Trace, cfg EvalConfig) Metrics { return core.Evaluate(tr, cfg) }

// NewEvaluator returns an incremental evaluator for streaming consumers
// (see Evaluator).
func NewEvaluator(cfg EvalConfig) *Evaluator { return core.NewEvaluator(cfg) }

// ParsePGUPolicy reads the textual PGU policy spelling ("off", "region",
// "branch", "all") shared by the CLIs and the serving API.
func ParsePGUPolicy(s string) (PGUPolicy, error) { return core.ParsePGUPolicy(s) }

// NewSFPF returns a squash false path filter in its reset state.
func NewSFPF() *SFPF { return core.NewSFPF() }

// RunPipeline executes a program on the in-order timing model.
func RunPipeline(p *Program, cfg PipelineConfig, limit uint64) (PipelineStats, error) {
	return pipeline.Run(p, cfg, limit)
}

// DefaultPipelineConfig returns the experiment machine model with the
// given predictor.
func DefaultPipelineConfig(pred Predictor) PipelineConfig {
	return pipeline.DefaultConfig(pred)
}

// Predictor constructors.
var (
	// NewStatic returns an always-taken or always-not-taken predictor.
	NewStatic = bpred.NewStatic
	// NewBimodal returns a pc-indexed 2-bit-counter predictor.
	NewBimodal = bpred.NewBimodal
	// NewGShare returns a global-history XOR predictor.
	NewGShare = bpred.NewGShare
	// NewGSelect returns a concatenated pc/history predictor.
	NewGSelect = bpred.NewGSelect
	// NewGAg returns a purely history-indexed predictor.
	NewGAg = bpred.NewGAg
	// NewLocal returns a PAg two-level local predictor.
	NewLocal = bpred.NewLocal
	// NewTournament returns a McFarling combining predictor.
	NewTournament = bpred.NewTournament
	// NewAgree returns a bias/agreement predictor (aliasing-tolerant).
	NewAgree = bpred.NewAgree
	// NewPerceptron returns a perceptron predictor (Jiménez & Lin 2001).
	NewPerceptron = bpred.NewPerceptron
)

// NewPredictor builds a predictor from a registry spec string such as
// "gshare", "gshare:14:10" or "perceptron:8:24". Omitted parameters take
// per-kind defaults; see PredictorUsage for the full syntax.
func NewPredictor(spec string) (Predictor, error) { return sim.NewPredictor(spec) }

// PredictorKinds lists the predictor kinds the registry knows, sorted.
func PredictorKinds() []string { return sim.Kinds() }

// PredictorUsage returns a one-line-per-kind summary of the predictor
// spec syntax accepted by NewPredictor.
func PredictorUsage() string { return sim.Usage() }

// Workloads returns the benchmark suite.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// MustWorkload is WorkloadByName but panics on unknown names.
func MustWorkload(name string) Workload { return workload.ByNameMust(name) }

// Synth generates a seeded random structured program (useful for fuzzing
// and property tests against the if-converter).
func Synth(seed uint64, statements int) *Program { return workload.Synth(seed, statements) }

// Assemble parses P64 assembly text.
func Assemble(name, src string) (*Program, error) { return asm.Parse(name, src) }

// Disassemble renders a program as parseable assembly text.
func Disassemble(p *Program) string { return asm.Format(p) }

// Experiments lists the reconstruction experiments (E1–E14).
func Experiments() []Experiment { return harness.All() }

// ExperimentByID looks one up (e.g. "E3").
func ExperimentByID(id string) (Experiment, error) { return harness.ByID(id) }

// NewSuite prepares the workload set shared by experiments.
func NewSuite(cfg ExperimentConfig) (*Suite, error) { return harness.NewSuite(cfg) }

// RunExperiments runs every experiment and returns their tables.
func RunExperiments(cfg ExperimentConfig) ([]ExperimentResult, error) {
	return harness.RunAll(cfg)
}
